"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Instruments carry hierarchical dotted names (``loop.voltage``,
``orchestrator.cache_hits``) and live in a :class:`MetricsRegistry`
whose export is deterministic: :meth:`MetricsRegistry.to_json` emits
the same bytes for the same instrument values regardless of creation
or observation order.  Determinism here means *pure function of the
recorded values* -- wall-clock time never enters a registry (that is
the :mod:`~repro.telemetry.profiler`'s job, and its report is kept
out of every byte-compared artifact).

Telemetry must cost nothing when unused, so the default registry
throughout the repo is a :class:`NullMetricsRegistry`: every lookup
returns one shared no-op instrument and recording is a single no-op
method call (call sites that sit in per-cycle paths additionally guard
on :attr:`MetricsRegistry.enabled` and skip the call entirely).
"""

import bisect
import json
import math
import re

import numpy as np

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def validate_name(name):
    """Check a hierarchical instrument name; returns it unchanged."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(
            "instrument name must be dotted lowercase [a-z0-9_] segments, "
            "got %r" % (name,))
    return name


class Counter:
    """A monotonically increasing integer-or-float count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counter %s cannot decrease (inc %r)"
                             % (self.name, amount))
        self.value += amount

    def __repr__(self):
        return "Counter(%s=%r)" % (self.name, self.value)


class Gauge:
    """A last-value-wins instrument (``None`` until first set)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        self.value = value

    def __repr__(self):
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket histogram of finite numeric observations.

    Args:
        name: hierarchical instrument name.
        bounds: strictly increasing bucket upper bounds.  Observation
            ``v`` lands in the first bucket with ``v <= bounds[i]``;
            values above ``bounds[-1]`` land in the implicit overflow
            bucket, so ``counts`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    def __init__(self, name, bounds):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram %s needs at least one bound" % name)
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("histogram %s bounds must be finite" % name)
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram %s bounds must be strictly "
                             "increasing, got %r" % (name, bounds))
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        """Fold one finite observation into the buckets."""
        if not math.isfinite(value):
            raise ValueError("histogram %s got non-finite value %r"
                             % (self.name, value))
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_array(self, values):
        """Fold a batch of observations, identically to per-sample
        :meth:`observe` calls.

        Bucketing uses ``searchsorted`` (the vectorized twin of
        ``bisect_left``) and the running ``total`` is advanced with a
        cumulative sum seeded by the current total, which reproduces the
        sequential left-to-right float accumulation bit for bit.  On a
        non-finite sample, the finite prefix is folded first and then
        the same ``ValueError`` as the scalar path is raised.
        """
        v = np.asarray(values, dtype=float)
        if v.ndim != 1:
            raise ValueError("histogram %s batch must be 1-D, got shape "
                             "%r" % (self.name, v.shape))
        bad = None
        finite = np.isfinite(v)
        if not finite.all():
            bad = int(np.argmax(~finite))
            v = v[:bad]
        if v.size:
            idx = np.searchsorted(self.bounds, v, side="left")
            counts = self.counts
            for i, c in enumerate(
                    np.bincount(idx, minlength=len(counts)).tolist()):
                if c:
                    counts[i] += c
            self.count += int(v.size)
            self.total = float(
                np.cumsum(np.concatenate(([self.total], v)))[-1])
            v_min = float(v.min())
            v_max = float(v.max())
            if self.min is None or v_min < self.min:
                self.min = v_min
            if self.max is None or v_max > self.max:
                self.max = v_max
        if bad is not None:
            raise ValueError(
                "histogram %s got non-finite value %r"
                % (self.name, float(np.asarray(values, dtype=float)[bad])))

    def to_dict(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self):
        return "Histogram(%s, n=%d)" % (self.name, self.count)


class MetricsRegistry:
    """Get-or-create home for named instruments with stable export.

    A name maps to exactly one instrument; asking for the same name as
    a different instrument type (or a histogram with different bounds)
    is an error -- silent aliasing would corrupt exported counts.
    """

    #: Hot paths may skip recording entirely when this is ``False``.
    enabled = True

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def _claim(self, name, table):
        validate_name(name)
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError("instrument %r already registered as a "
                                 "different type" % name)

    def counter(self, name):
        """The :class:`Counter` called ``name`` (created on first use)."""
        if name not in self._counters:
            self._claim(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name):
        """The :class:`Gauge` called ``name`` (created on first use)."""
        if name not in self._gauges:
            self._claim(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name, bounds=None):
        """The :class:`Histogram` called ``name``.

        ``bounds`` is required on first use; a later lookup may omit it
        or must repeat the same bounds.
        """
        existing = self._histograms.get(name)
        if existing is not None:
            if bounds is not None and tuple(float(b) for b in bounds) \
                    != existing.bounds:
                raise ValueError("histogram %r already registered with "
                                 "different bounds" % name)
            return existing
        if bounds is None:
            raise ValueError("histogram %r needs bounds on first use"
                             % name)
        self._claim(name, self._histograms)
        self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def scoped(self, prefix):
        """A view of this registry that prefixes every name with
        ``prefix`` + ``"."`` (hierarchical namespacing for subsystems)."""
        return ScopedRegistry(self, validate_name(prefix))

    def to_dict(self):
        """Deterministic JSON-safe snapshot (names sorted)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def to_json(self, indent=2):
        """Byte-stable JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def __repr__(self):
        return ("MetricsRegistry(%d counters, %d gauges, %d histograms)"
                % (len(self._counters), len(self._gauges),
                   len(self._histograms)))


class ScopedRegistry:
    """A prefixing view over a :class:`MetricsRegistry` (no storage of
    its own; instruments live in, and export from, the parent)."""

    __slots__ = ("_parent", "_prefix")

    def __init__(self, parent, prefix):
        self._parent = parent
        self._prefix = prefix

    @property
    def enabled(self):
        return self._parent.enabled

    def counter(self, name):
        return self._parent.counter(self._prefix + "." + name)

    def gauge(self, name):
        return self._parent.gauge(self._prefix + "." + name)

    def histogram(self, name, bounds=None):
        return self._parent.histogram(self._prefix + "." + name, bounds)

    def scoped(self, prefix):
        return ScopedRegistry(self._parent,
                              self._prefix + "." + validate_name(prefix))


class _NullInstrument:
    """One shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def observe_array(self, values):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The cheap default: every lookup returns the shared no-op
    instrument and the export is empty."""

    enabled = False

    def __init__(self):
        pass

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name, bounds=None):
        return _NULL_INSTRUMENT

    def scoped(self, prefix):
        return self

    def to_dict(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def __repr__(self):
        return "NullMetricsRegistry()"


#: Shared no-op registry (safe: it holds no state at all).
NULL_METRICS = NullMetricsRegistry()
