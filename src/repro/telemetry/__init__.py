"""Telemetry: metrics, cycle-level event tracing, and span profiling.

Three independent components, bundled by :class:`Telemetry`:

* :class:`~repro.telemetry.registry.MetricsRegistry` -- named counters,
  gauges, and fixed-bucket histograms with deterministic JSON export;
* :class:`~repro.telemetry.trace.TraceRecorder` -- a bounded ring
  buffer of cycle-stamped events (sensor transitions, actuation
  windows, emergencies, watchdog/fail-safe trips), exportable as
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto) or as
  byte-stable JSONL (the golden-trace format);
* :class:`~repro.telemetry.profiler.SpanProfiler` -- wall-time totals
  for the hot paths, kept strictly out of content hashes and every
  byte-compared report.

The default everywhere is :data:`NULL_TELEMETRY` (all three components
null): per-cycle call sites bind each component once at construction
and skip disabled ones entirely, so the instrumented closed loop runs
at its uninstrumented speed when telemetry is off
(``benchmarks/bench_perf_telemetry.py`` measures exactly this).

Determinism contract: everything a :class:`TraceRecorder` or a
:class:`MetricsRegistry` records is a pure function of the simulation.
Wall-clock time lives only in the profiler, whose report is labelled
as such and excluded from goldens, caches, and merged reports.
"""

from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullSpanProfiler,
    SpanProfiler,
)
from repro.telemetry.registry import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.trace import (
    NULL_TRACE,
    NullTraceRecorder,
    TraceRecorder,
    merged_chrome_json,
    merged_chrome_trace,
)

__all__ = [
    "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "NullMetricsRegistry", "NULL_METRICS",
    "TraceRecorder", "NullTraceRecorder", "NULL_TRACE",
    "merged_chrome_json", "merged_chrome_trace",
    "SpanProfiler", "NullSpanProfiler", "NULL_PROFILER",
    "Telemetry", "NULL_TELEMETRY",
]


class Telemetry:
    """A bundle of the three components (any subset may be real).

    Args:
        metrics: a :class:`MetricsRegistry` (default: the shared null).
        trace: a :class:`TraceRecorder` (default: the shared null).
        profiler: a :class:`SpanProfiler` (default: the shared null).
    """

    __slots__ = ("metrics", "trace", "profiler")

    def __init__(self, metrics=None, trace=None, profiler=None):
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.trace = trace if trace is not None else NULL_TRACE
        self.profiler = (profiler if profiler is not None
                         else NULL_PROFILER)

    @classmethod
    def full(cls, capacity=65536):
        """All three components live (the ``trace`` subcommand's
        configuration)."""
        return cls(metrics=MetricsRegistry(),
                   trace=TraceRecorder(capacity=capacity),
                   profiler=SpanProfiler())

    @property
    def enabled(self):
        """Whether any component actually records."""
        return (self.metrics.enabled or self.trace.enabled
                or self.profiler.enabled)

    def __repr__(self):
        live = [name for name, part in (("metrics", self.metrics),
                                        ("trace", self.trace),
                                        ("profiler", self.profiler))
                if part.enabled]
        return "Telemetry(%s)" % (", ".join(live) if live else "off")


#: The shared all-null bundle used as the default everywhere.
NULL_TELEMETRY = Telemetry()
