"""Span profiling of the hot paths (wall time, kept out of goldens).

A :class:`SpanProfiler` accumulates (count, total seconds) per named
span.  The monotonic clock makes its *seconds* inherently
non-deterministic, so the profiler lives strictly outside every
byte-compared artifact: span times never enter a
:class:`~repro.orchestrator.spec.JobSpec` content hash, a cached
result payload, a merged orchestrator report, or a golden trace.  The
deterministic half of the profile -- how many times each span ran --
is available separately via :meth:`SpanProfiler.counts` for tests that
want byte-stable assertions.

Per-cycle call sites (the PDN step, the controller update) do not use
the context manager; they read :attr:`SpanProfiler.clock` directly and
call :meth:`SpanProfiler.add`, and skip even that when handed the
:class:`NullSpanProfiler` (``enabled`` is ``False``).
"""

import json
import time
from contextlib import contextmanager


class SpanProfiler:
    """Accumulates wall-time totals per named span.

    Args:
        clock: a zero-argument monotonic time source in seconds
            (default :func:`time.perf_counter`); injectable for
            deterministic tests.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self._spans = {}          # name -> [count, total_seconds]

    def add(self, name, seconds):
        """Fold one timed interval into the span's totals."""
        entry = self._spans.get(name)
        if entry is None:
            self._spans[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    @contextmanager
    def span(self, name):
        """Time a ``with`` block as one interval of span ``name``."""
        start = self.clock()
        try:
            yield self
        finally:
            self.add(name, self.clock() - start)

    def counts(self):
        """Deterministic span -> call-count map (no wall time)."""
        return {name: entry[0]
                for name, entry in sorted(self._spans.items())}

    def report(self):
        """Span -> ``{"count", "seconds"}`` map (wall time included;
        never feed this into a byte-compared artifact)."""
        return {name: {"count": entry[0], "seconds": entry[1]}
                for name, entry in sorted(self._spans.items())}

    def report_json(self, indent=2):
        """JSON text of :meth:`report` (sorted keys; *not* byte-stable
        across runs -- the seconds are wall time)."""
        return json.dumps(self.report(), sort_keys=True, indent=indent)

    def __repr__(self):
        return "SpanProfiler(%d spans)" % len(self._spans)


class NullSpanProfiler(SpanProfiler):
    """The cheap default: spans cost one no-op call (or nothing, when
    the call site guards on :attr:`enabled`)."""

    enabled = False

    def add(self, name, seconds):
        pass

    @contextmanager
    def span(self, name):
        yield self

    def __repr__(self):
        return "NullSpanProfiler()"


#: Shared no-op profiler.
NULL_PROFILER = NullSpanProfiler()
