"""Cycle-stamped event tracing with Chrome trace-event export.

A :class:`TraceRecorder` captures the closed loop's discrete happenings
-- sensor level transitions, controller command changes, actuator
gate/phantom-fire windows, emergency onsets, watchdog and fail-safe
trips -- into a bounded ring buffer.  Events are stamped with the
*timed-region cycle index* (the loop writes :attr:`TraceRecorder.cycle`
once per step), never with wall-clock time, so a recorded stream is a
pure function of the simulation: the golden-trace regression tier
compares exported bytes directly.

Two exports:

* :meth:`TraceRecorder.to_jsonl` -- one compact sorted-key JSON object
  per line; the byte-stable form the golden tests pin.
* :meth:`TraceRecorder.to_chrome_json` -- the Chrome trace-event format
  (the JSON Object Format with a ``traceEvents`` array), loadable in
  ``chrome://tracing`` and Perfetto.  One simulated cycle maps to one
  microsecond of trace time (``ts = cycle``); each event category gets
  its own named thread track.
"""

import json
from collections import deque

#: Event kinds stored in the ring buffer.
KIND_INSTANT = "instant"
KIND_BEGIN = "begin"
KIND_END = "end"

_KINDS = (KIND_INSTANT, KIND_BEGIN, KIND_END)

#: kind -> Chrome trace-event phase.
_CHROME_PHASE = {KIND_INSTANT: "i", KIND_BEGIN: "B", KIND_END: "E"}


class TraceRecorder:
    """A bounded ring buffer of cycle-stamped events.

    Args:
        capacity: maximum retained events; when full, the *oldest*
            event is evicted (and counted in :attr:`dropped`) so the
            buffer always holds the most recent window of activity.

    Attributes:
        cycle: the current cycle stamp; emitters that do not pass an
            explicit cycle inherit it (the closed loop updates it once
            per step).
        dropped: events evicted due to the capacity bound.
    """

    enabled = True

    __slots__ = ("capacity", "cycle", "dropped", "_events")

    def __init__(self, capacity=65536):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self.cycle = 0
        self.dropped = 0
        self._events = deque()

    # -- recording -----------------------------------------------------

    def event(self, kind, name, cat, args=None, cycle=None):
        """Append one event record (the other emitters wrap this)."""
        if kind not in _KINDS:
            raise ValueError("unknown event kind %r (known: %s)"
                             % (kind, ", ".join(_KINDS)))
        record = {"cycle": self.cycle if cycle is None else int(cycle),
                  "kind": kind, "name": name, "cat": cat}
        if args:
            record["args"] = dict(args)
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(record)

    def instant(self, name, cat, args=None, cycle=None):
        """A point event (a transition, a trip)."""
        self.event(KIND_INSTANT, name, cat, args, cycle)

    def begin(self, name, cat, args=None, cycle=None):
        """Open a duration window (e.g. an actuation episode)."""
        self.event(KIND_BEGIN, name, cat, args, cycle)

    def end(self, name, cat, args=None, cycle=None):
        """Close the most recent open window of the same name/cat."""
        self.event(KIND_END, name, cat, args, cycle)

    # -- access --------------------------------------------------------

    def events(self):
        """The retained events, oldest first (a fresh list)."""
        return list(self._events)

    def __len__(self):
        return len(self._events)

    def clear(self):
        """Drop all retained events and reset the drop count."""
        self._events.clear()
        self.dropped = 0
        self.cycle = 0

    # -- export --------------------------------------------------------

    def to_jsonl(self):
        """Compact one-event-per-line JSON; byte-stable (sorted keys,
        no whitespace variance), the golden-trace format."""
        return "\n".join(
            json.dumps(e, sort_keys=True, separators=(",", ":"))
            for e in self._events)

    def chrome_trace(self, metadata=None):
        """The trace as a Chrome trace-event JSON object (a dict).

        Args:
            metadata: optional JSON-safe dict stored under
                ``otherData`` (workload name, PDN parameters...).

        Each category becomes a named thread; ``begin`` events without
        a matching ``end`` are auto-closed at the last seen cycle so
        viewers never render a window as unfinished, and ``end``
        events without a matching ``begin`` are dropped.  To combine
        several recorders (e.g. an uncontrolled baseline next to the
        controlled run) into one file, see
        :func:`merged_chrome_trace`.
        """
        return merged_chrome_trace([("repro-didt", self)],
                                   metadata=metadata)

    def to_chrome_json(self, metadata=None, indent=None):
        """Byte-stable JSON text of :meth:`chrome_trace`."""
        return json.dumps(self.chrome_trace(metadata), sort_keys=True,
                          indent=indent)

    def __repr__(self):
        return ("TraceRecorder(%d/%d events, %d dropped, cycle=%d)"
                % (len(self._events), self.capacity, self.dropped,
                   self.cycle))


class NullTraceRecorder(TraceRecorder):
    """The cheap default: records nothing, exports empty."""

    enabled = False

    __slots__ = ()

    def __init__(self):
        super().__init__(capacity=1)

    def event(self, kind, name, cat, args=None, cycle=None):
        pass


def _chrome_section(recorder, pid, process_name):
    """One recorder's events as a process track (a trace-event list)."""
    events = recorder.events()
    cats = sorted({e["cat"] for e in events})
    tids = {cat: i + 1 for i, cat in enumerate(cats)}
    trace_events = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": process_name},
    }, {
        "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
        "args": {"sort_index": pid},
    }]
    for cat in cats:
        trace_events.append({
            "ph": "M", "pid": pid, "tid": tids[cat],
            "name": "thread_name", "args": {"name": cat}})
        trace_events.append({
            "ph": "M", "pid": pid, "tid": tids[cat],
            "name": "thread_sort_index",
            "args": {"sort_index": tids[cat]}})
    last_cycle = 0
    open_windows = {}        # (tid, name) -> open begin count
    for e in events:
        cycle = e["cycle"]
        last_cycle = max(last_cycle, cycle)
        tid = tids[e["cat"]]
        phase = _CHROME_PHASE[e["kind"]]
        if phase == "E":
            key = (tid, e["name"])
            if not open_windows.get(key):
                continue              # unmatched end: drop
            open_windows[key] -= 1
        out = {"ph": phase, "ts": cycle, "pid": pid, "tid": tid,
               "name": e["name"], "cat": e["cat"]}
        if phase == "i":
            out["s"] = "t"
        if phase == "B":
            key = (tid, e["name"])
            open_windows[key] = open_windows.get(key, 0) + 1
        if "args" in e:
            out["args"] = e["args"]
        trace_events.append(out)
    # Auto-close whatever is still open so every window renders.
    for (tid, name), depth in sorted(open_windows.items()):
        for _ in range(depth):
            trace_events.append({"ph": "E", "ts": last_cycle + 1,
                                 "pid": pid, "tid": tid, "name": name})
    return trace_events


def merged_chrome_trace(sections, metadata=None):
    """Several recorders as one Chrome trace, one process track each.

    Args:
        sections: ``(process_name, recorder)`` pairs; section *i*
            becomes pid *i* (e.g. ``[("uncontrolled", base_trace),
            ("controlled", trace)]`` renders the two runs one above
            the other on the shared cycle axis).
        metadata: optional JSON-safe dict merged into ``otherData``.

    Returns:
        The trace dict (``traceEvents`` / ``displayTimeUnit`` /
        ``otherData``), deterministic for deterministic inputs.
    """
    trace_events = []
    dropped = 0
    for pid, (process_name, recorder) in enumerate(sections):
        trace_events.extend(_chrome_section(recorder, pid, process_name))
        dropped += recorder.dropped
    out = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated cycles (1 cycle = 1 us "
                               "of trace time)",
                      "dropped_events": dropped},
    }
    if metadata:
        out["otherData"].update(metadata)
    return out


def merged_chrome_json(sections, metadata=None, indent=None):
    """Byte-stable JSON text of :func:`merged_chrome_trace`."""
    return json.dumps(merged_chrome_trace(sections, metadata),
                      sort_keys=True, indent=indent)


#: Shared no-op recorder (holds no state; instant/begin/end all no-op
#: through the overridden :meth:`event`).
NULL_TRACE = NullTraceRecorder()
