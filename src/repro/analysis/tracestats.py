"""Summaries over recorded telemetry traces.

A :class:`~repro.telemetry.trace.TraceRecorder` captures the closed
loop's qualitative story -- sensor level flips, controller commands,
actuation windows, emergency episodes -- as cycle-stamped events.  This
module folds a recorded event list into the small, deterministic
numbers the CLI and the tests want: how many of each event, how long
the actuation and emergency windows were, and where the first
emergency started.

Everything here is pure-Python over the event tuples returned by
:meth:`TraceRecorder.events`, so it works equally on a live recorder
and on events re-parsed from an exported JSONL file.
"""

from repro.telemetry.trace import KIND_BEGIN, KIND_END, KIND_INSTANT


def summarize_events(events, last_cycle=None):
    """Fold trace events into a deterministic summary dict.

    Args:
        events: an iterable of event dicts (``cycle`` / ``kind`` /
            ``name`` / ``cat`` / optional ``args``), in recording order
            -- as produced by
            :meth:`~repro.telemetry.trace.TraceRecorder.events` or
            re-parsed from an exported JSONL file.
        last_cycle: close any still-open begin/end window at this cycle
            (normally the run's final cycle index).  ``None`` closes
            open windows at the last event's cycle.

    Returns:
        A dict with:

        * ``events`` -- total events summarized;
        * ``counts`` -- ``{name: n}`` for instant events and window
          *openings* (event names carry their category prefix, e.g.
          ``sensor.level``);
        * ``windows`` -- ``{name: {"count", "cycles"}}`` for begin/end
          pairs (cycles = summed durations, open windows closed at
          ``last_cycle``);
        * ``first_emergency_cycle`` -- cycle of the first event in the
          ``emergency`` category, or ``None``;
        * ``sensor_transitions`` -- instant count in the ``sensor``
          category (convenience for the common question).
    """
    events = list(events)
    counts = {}
    windows = {}
    open_windows = {}
    max_cycle = 0
    first_emergency = None
    for event in events:
        cycle, kind = event["cycle"], event["kind"]
        if cycle > max_cycle:
            max_cycle = cycle
        key = event["name"]
        if first_emergency is None and event["cat"] == "emergency":
            first_emergency = cycle
        if kind == KIND_INSTANT:
            counts[key] = counts.get(key, 0) + 1
        elif kind == KIND_BEGIN:
            counts[key] = counts.get(key, 0) + 1
            open_windows.setdefault(key, []).append(cycle)
        elif kind == KIND_END:
            stack = open_windows.get(key)
            if stack:
                start = stack.pop()
                entry = windows.setdefault(key, {"count": 0, "cycles": 0})
                entry["count"] += 1
                entry["cycles"] += max(0, cycle - start)
            # An end with no matching begin (evicted from the ring) is
            # dropped, mirroring the Chrome exporter.
    close_at = last_cycle if last_cycle is not None else max_cycle
    for key in sorted(open_windows):
        for start in open_windows[key]:
            entry = windows.setdefault(key, {"count": 0, "cycles": 0})
            entry["count"] += 1
            entry["cycles"] += max(0, close_at - start)
    sensor_transitions = sum(
        counts[key] for key in counts if key.startswith("sensor."))
    return {
        "events": len(events),
        "counts": dict(sorted(counts.items())),
        "windows": {key: windows[key] for key in sorted(windows)},
        "first_emergency_cycle": first_emergency,
        "sensor_transitions": sensor_transitions,
    }


def format_summary(summary):
    """Plain-text lines for a :func:`summarize_events` dict."""
    lines = ["trace: %d events" % summary["events"]]
    if summary["sensor_transitions"]:
        lines.append("  sensor transitions: %d"
                     % summary["sensor_transitions"])
    for key, count in summary["counts"].items():
        lines.append("  %-24s %d" % (key, count))
    for key, entry in summary["windows"].items():
        lines.append("  %-24s %d window(s), %d cycle(s)"
                     % (key, entry["count"], entry["cycles"]))
    if summary["first_emergency_cycle"] is not None:
        lines.append("  first emergency at cycle %d"
                     % summary["first_emergency_cycle"])
    return "\n".join(lines)
