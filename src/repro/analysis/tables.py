"""Plain-text tables and charts for the benchmark harness."""


def format_table(headers, rows, title=None, float_format="%.4g"):
    """Render an aligned plain-text table.

    Args:
        headers: column names.
        rows: sequence of row sequences; floats are formatted with
            ``float_format``, everything else with ``str``.
        title: optional caption printed above the table.

    Returns:
        The table as a single string.
    """
    def fmt(cell):
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return float_format % cell
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width %d != header width %d"
                             % (len(row), len(headers)))
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, levels=_SPARK_LEVELS):
    """A one-line character plot of a numeric series."""
    values = list(values)
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return levels[len(levels) // 2] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(levels) - 1))
        out.append(levels[idx])
    return "".join(out)


def ascii_chart(series, width=72, height=14, label_format="%8.3g"):
    """A multi-line ASCII chart of one or more named series.

    Args:
        series: mapping of name -> sequence of y values (x is the index,
            resampled to ``width`` columns).
        width: plot columns.
        height: plot rows.
        label_format: y-axis label format.

    Returns:
        The chart as a string, with a legend assigning one glyph per
        series.
    """
    if not series:
        return ""
    glyphs = "*o+x@%&$"
    names = list(series)
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return ""
    lo = min(all_values)
    hi = max(all_values)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        values = list(series[name])
        if not values:
            continue
        glyph = glyphs[si % len(glyphs)]
        for col in range(width):
            # Max-pool the column's index range so narrow features (e.g.
            # a resonance spike in a spectrum) are never sampled away.
            lo_i = int(col * len(values) / width)
            hi_i = max(lo_i + 1, int((col + 1) * len(values) / width))
            y = max(values[lo_i:hi_i])
            row = int(round((hi - y) / (hi - lo) * (height - 1)))
            grid[row][col] = glyph
    lines = []
    for r, row in enumerate(grid):
        y_val = hi - r * (hi - lo) / (height - 1)
        lines.append((label_format % y_val) + " |" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "  ".join("%s=%s" % (glyphs[i % len(glyphs)], n)
                       for i, n in enumerate(names))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def format_suite_table(aggregates, title="suite aggregates"):
    """Render the per-suite aggregate block of a sweep report.

    Args:
        aggregates: the report's ``"suites"`` dict
            (:func:`~repro.orchestrator.runner.suite_aggregates`).

    One row per suite: cell/failure counts, total emergency cycles,
    the worst minimum voltage seen anywhere in the suite, and the
    controller win/loss/tie record against the paired uncontrolled
    cells.
    """
    rows = []
    for name in sorted(aggregates):
        row = aggregates[name]
        ctrl = row.get("controller") or {}
        worst = row.get("worst_v_min")
        rows.append([
            name,
            row.get("cells", 0),
            row.get("failed", 0),
            row.get("emergency_cycles", 0),
            "-" if worst is None else "%.4f" % worst,
            "%d/%d/%d" % (ctrl.get("wins", 0), ctrl.get("losses", 0),
                          ctrl.get("ties", 0)),
        ])
    return format_table(
        ["suite", "cells", "failed", "emergencies", "worst v_min",
         "ctrl w/l/t"], rows, title=title)
