"""Spectral analysis of current traces.

The paper's whole argument is spectral: the package attenuates current
noise everywhere *except* a mid-frequency band around its resonance, so
what makes a workload dangerous is not how much its current varies but
how much of that variation falls in the resonant band.  This module
makes the argument quantitative:

* :func:`current_spectrum` -- amplitude spectrum of a per-cycle trace;
* :func:`resonant_band_energy` -- the variation captured by the
  network's own bandwidth around its resonance;
* :func:`danger_index` -- band energy weighted by the network's
  impedance curve: an a-priori predictor of worst-case droop.  The
  Table 2 offenders are exactly the workloads that rank highest.
"""

import math

import numpy as np

from repro.pdn.rlc import NOMINAL_CLOCK_HZ


def current_spectrum(currents, clock_hz=NOMINAL_CLOCK_HZ):
    """One-sided amplitude spectrum of a per-cycle current trace.

    The DC component is removed (it produces only static IR drop).

    Returns:
        ``(freqs_hz, amplitudes)``, amplitudes in amperes (peak of the
        corresponding sinusoid).
    """
    c = np.asarray(currents, dtype=float)
    if c.size < 8:
        raise ValueError("trace too short for spectral analysis")
    signal = c - c.mean()
    spectrum = np.abs(np.fft.rfft(signal)) * 2.0 / c.size
    freqs = np.fft.rfftfreq(c.size, d=1.0 / clock_hz)
    return freqs, spectrum


def resonant_band_energy(currents, pdn, clock_hz=NOMINAL_CLOCK_HZ,
                         bandwidth_factor=1.0):
    """RMS current (amperes) inside the network's resonant band.

    The band is centred on the resonance with the network's own
    half-power width (``f0 / Q``), optionally scaled by
    ``bandwidth_factor``.
    """
    freqs, amps = current_spectrum(currents, clock_hz)
    f0 = pdn.resonant_hz
    half_width = 0.5 * bandwidth_factor * f0 / pdn.quality_factor
    mask = (freqs >= f0 - half_width) & (freqs <= f0 + half_width)
    if not mask.any():
        return 0.0
    # RMS of the in-band sinusoids.
    return float(math.sqrt(np.sum((amps[mask] / math.sqrt(2.0)) ** 2)))


def danger_index(currents, pdn, clock_hz=NOMINAL_CLOCK_HZ):
    """Predicted worst droop (volts) from the trace's spectrum alone.

    Each spectral line contributes its amplitude times the network's
    impedance at that frequency; summing in quadrature approximates the
    RMS droop, and the crest of a resonant ring runs ~sqrt(2) above it.
    This is a *linear, open-loop* prediction -- no simulation -- yet it
    orders workloads by danger the same way full closed-loop emergency
    counts do (see ``bench_ext_spectrum.py``).
    """
    freqs, amps = current_spectrum(currents, clock_hz)
    z = pdn.impedance(freqs)
    rms = math.sqrt(float(np.sum((amps * z / math.sqrt(2.0)) ** 2)))
    return math.sqrt(2.0) * rms


def band_fraction(currents, pdn, clock_hz=NOMINAL_CLOCK_HZ):
    """Fraction of the trace's AC variance inside the resonant band."""
    c = np.asarray(currents, dtype=float)
    total = float(c.var())
    if total == 0.0:
        return 0.0
    in_band = resonant_band_energy(currents, pdn, clock_hz)
    return min(1.0, in_band ** 2 / total)
