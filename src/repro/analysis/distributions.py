"""Voltage distributions (the paper's Figure 10)."""

import numpy as np


class VoltageDistribution:
    """Histogram of per-cycle die voltages.

    Args:
        voltages: per-cycle trace (array-like).
        v_min / v_max: histogram range; defaults to the +/-5% spec band
            padded slightly, so distributions from different benchmarks
            share bins and are directly comparable (as in Figure 10).
        bins: bin count.
    """

    def __init__(self, voltages, v_min=0.94, v_max=1.06, bins=48):
        if bins <= 0:
            raise ValueError("bins must be positive")
        if v_max <= v_min:
            raise ValueError("v_max must exceed v_min")
        v = np.asarray(voltages, dtype=float)
        if v.size == 0:
            raise ValueError("empty voltage trace")
        self.samples = v.size
        self.edges = np.linspace(v_min, v_max, bins + 1)
        counts, _ = np.histogram(np.clip(v, v_min, v_max), bins=self.edges)
        self.counts = counts
        self.fractions = counts / v.size
        self.mean = float(v.mean())
        self.std = float(v.std())
        self.v_observed_min = float(v.min())
        self.v_observed_max = float(v.max())

    @property
    def centers(self):
        """Bin centres, volts."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def spread_mv(self):
        """Observed min-to-max spread, millivolts."""
        return (self.v_observed_max - self.v_observed_min) * 1000.0

    def mode_voltage(self):
        """Centre of the most populated bin."""
        return float(self.centers[int(np.argmax(self.counts))])

    def fraction_below(self, threshold):
        """Fraction of samples strictly below ``threshold`` volts."""
        v_lo = self.edges[:-1]
        full = self.fractions[self.edges[1:] <= threshold].sum()
        partial_bin = (v_lo < threshold) & (self.edges[1:] > threshold)
        # Approximate the straddling bin by linear interpolation.
        if partial_bin.any():
            i = int(np.flatnonzero(partial_bin)[0])
            width = self.edges[i + 1] - self.edges[i]
            full += self.fractions[i] * (threshold - self.edges[i]) / width
        return float(full)

    def render(self, width=50, label=""):
        """Multi-line ASCII rendering of the distribution."""
        peak = self.fractions.max() or 1.0
        lines = []
        if label:
            lines.append("%s (mean %.3f V, std %.1f mV, spread %.1f mV)"
                         % (label, self.mean, self.std * 1000.0,
                            self.spread_mv))
        for centre, frac in zip(self.centers, self.fractions):
            if frac == 0.0:
                continue
            bar = "#" * max(1, int(round(width * frac / peak)))
            lines.append("%7.4f V | %s" % (centre, bar))
        return "\n".join(lines)
