"""Analysis and reporting helpers.

* :mod:`repro.analysis.distributions` -- voltage histograms (Figure 10).
* :mod:`repro.analysis.metrics` -- performance-loss / energy-increase
  deltas between controlled and baseline runs (Figures 14-18).
* :mod:`repro.analysis.tables` -- plain-text tables and charts so the
  benchmark harness prints the same rows and series the paper reports.
* :mod:`repro.analysis.tracestats` -- deterministic summaries over
  recorded telemetry trace events.
"""

from repro.analysis.distributions import VoltageDistribution
from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
    RunComparison,
)
from repro.analysis.tables import (ascii_chart, format_suite_table,
                                   format_table, sparkline)
from repro.analysis.spectrum import (
    band_fraction,
    current_spectrum,
    danger_index,
    resonant_band_energy,
)
from repro.analysis.tracestats import format_summary, summarize_events

__all__ = [
    "VoltageDistribution",
    "energy_increase_percent",
    "performance_loss_percent",
    "RunComparison",
    "ascii_chart",
    "format_suite_table",
    "format_table",
    "sparkline",
    "band_fraction",
    "current_spectrum",
    "danger_index",
    "resonant_band_energy",
    "format_summary",
    "summarize_events",
]
