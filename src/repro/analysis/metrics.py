"""Performance and energy deltas between runs (Figures 14-18).

The paper reports controller cost as *performance degradation* and
*energy increase* relative to an uncontrolled baseline.  Because the
controlled and baseline runs cover the same instruction stream, the fair
per-unit comparison is cycles-per-instruction and energy-per-instruction
over the committed work.
"""

from dataclasses import dataclass


def performance_loss_percent(baseline, controlled):
    """Percent increase in cycles-per-instruction vs the baseline run.

    Positive values mean the controller slowed the machine down.
    """
    base_cpi = _cpi(baseline)
    ctrl_cpi = _cpi(controlled)
    return 100.0 * (ctrl_cpi / base_cpi - 1.0)


def energy_increase_percent(baseline, controlled):
    """Percent increase in energy-per-instruction vs the baseline run."""
    base_epi = _epi(baseline)
    ctrl_epi = _epi(controlled)
    return 100.0 * (ctrl_epi / base_epi - 1.0)


def _cpi(result):
    if result.committed == 0:
        raise ValueError("run committed no instructions; cannot compare")
    return result.cycles / result.committed


def _epi(result):
    if result.committed == 0:
        raise ValueError("run committed no instructions; cannot compare")
    return result.energy / result.committed


@dataclass(frozen=True)
class RunComparison:
    """A baseline-vs-controlled comparison summary.

    Attributes:
        name: workload label.
        perf_loss_percent: CPI increase.
        energy_increase_percent: EPI increase.
        baseline_emergencies / controlled_emergencies: emergency cycles.
    """

    name: str
    perf_loss_percent: float
    energy_increase_percent: float
    baseline_emergencies: int
    controlled_emergencies: int

    @classmethod
    def from_results(cls, name, baseline, controlled):
        """Build a comparison from two LoopResults."""
        return cls(
            name=name,
            perf_loss_percent=performance_loss_percent(baseline, controlled),
            energy_increase_percent=energy_increase_percent(baseline,
                                                            controlled),
            baseline_emergencies=baseline.emergencies["emergency_cycles"],
            controlled_emergencies=controlled.emergencies["emergency_cycles"],
        )

    @property
    def emergencies_eliminated(self):
        """Whether control removed every emergency the baseline had."""
        return (self.baseline_emergencies > 0 and
                self.controlled_emergencies == 0)
