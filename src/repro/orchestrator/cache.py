"""Content-addressed on-disk memoization of completed job results.

Layout::

    <root>/<salt>/<hh>/<hash>.json

where ``root`` is ``REPRO_CACHE_DIR`` (default ``~/.cache/repro-didt``),
``salt`` folds in the code version so results computed by older code
can never satisfy newer code, ``hh`` is the first two hash hex digits
(keeps directories small), and ``hash`` is the spec's content hash.

Entries are written atomically (temp file + ``os.replace``) and store
the full canonical spec next to the result; a read validates the stored
spec against the requesting one, so a truncated file, a hash collision,
or a hand-edited entry degrades to a cache *miss*, never a wrong or
crashed run.  Only deterministic outcomes are worth memoizing -- the
runner caches ``"ok"`` and ``"diverged"`` results and re-executes
transient ``"budget"``/``"error"`` ones.
"""

import json
import os
import tempfile

from repro import __version__

#: Bump when the result payload schema changes shape.
RESULT_SCHEMA = 1

#: Statuses that are pure functions of the spec (safe to memoize).
CACHEABLE_STATUSES = ("ok", "diverged")


def default_cache_root():
    """``REPRO_CACHE_DIR`` or the per-user cache directory."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-didt")


def default_salt():
    """Code-version salt: old caches die with the code that made them."""
    return "v%s-schema%d" % (__version__, RESULT_SCHEMA)


class ResultCache:
    """Disk cache of job results keyed by spec content hash + salt.

    Args:
        root: cache directory (default :func:`default_cache_root`).
        salt: version salt (default :func:`default_salt`).
        enabled: ``False`` turns every operation into a no-op miss
            (the ``--no-cache`` path keeps one code path either way).
    """

    def __init__(self, root=None, salt=None, enabled=True):
        self.root = str(root) if root else default_cache_root()
        self.salt = salt or default_salt()
        self.enabled = bool(enabled)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec):
        """Where this spec's entry lives (whether or not it exists)."""
        digest = spec.content_hash()
        return os.path.join(self.root, self.salt, digest[:2],
                            digest + ".json")

    def get(self, spec):
        """The cached result dict for ``spec``, or ``None`` on miss.

        Any unreadable, unparsable, or mismatched entry counts as a
        miss (and is left for the next :meth:`put` to overwrite).
        """
        if not self.enabled:
            return None
        try:
            with open(self.path_for(spec), "r") as fh:
                payload = json.load(fh)
            if payload.get("salt") != self.salt:
                raise ValueError("salt mismatch")
            if payload.get("spec") != spec.to_dict():
                raise ValueError("spec mismatch")
            result = payload["result"]
            if not isinstance(result, dict) or "status" not in result:
                raise ValueError("malformed result")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec, result):
        """Store a result atomically; returns the entry path."""
        if not self.enabled:
            return None
        path = self.path_for(spec)
        payload = {
            "salt": self.salt,
            "spec": spec.to_dict(),
            "result": result,
        }
        text = json.dumps(payload, sort_keys=True, indent=2)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def invalidate(self, spec):
        """Drop one entry; returns whether anything was removed."""
        if not self.enabled:
            return False
        try:
            os.unlink(self.path_for(spec))
            return True
        except OSError:
            return False

    def clear(self):
        """Drop every entry under this cache's salt; returns a count."""
        removed = 0
        base = os.path.join(self.root, self.salt)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __repr__(self):
        return ("ResultCache(root=%r, salt=%r, enabled=%r, hits=%d, "
                "misses=%d)" % (self.root, self.salt, self.enabled,
                                self.hits, self.misses))
