"""Content-addressed on-disk memoization of completed job results.

Layout::

    <root>/<salt>/<hh>/<hash>.json

where ``root`` is ``REPRO_CACHE_DIR`` (default ``~/.cache/repro-didt``),
``salt`` folds in the code version so results computed by older code
can never satisfy newer code, ``hh`` is the first two hash hex digits
(keeps directories small), and ``hash`` is the spec's content hash.

Entries are written atomically (temp file + ``os.replace``) and store
the full canonical spec next to the result *plus a payload checksum*
over the result's canonical JSON; a read validates the stored spec
against the requesting one and the checksum against the stored result,
so a truncated file, a torn write, a hash collision, or a hand-edited
entry degrades to a cache *miss*, never a wrong or crashed run
(integrity failures are additionally counted in
:attr:`ResultCache.integrity_misses`).  A writer killed mid-``put``
leaves an orphaned ``*.tmp`` file behind; :meth:`ResultCache.
sweep_orphans` reclaims those, and the runner calls it at the start of
every batch.  Only deterministic outcomes are worth memoizing -- the
runner caches ``"ok"`` and ``"diverged"`` results and re-executes
transient ``"budget"``/``"error"``/``"crashed"`` ones.
"""

import hashlib
import json
import os
import tempfile
import time

from repro import __version__
from repro.faults import iofault

#: Bump when the result payload schema changes shape.
RESULT_SCHEMA = 1

#: Statuses that are pure functions of the spec (safe to memoize).
CACHEABLE_STATUSES = ("ok", "diverged")


def result_checksum(result):
    """Hex digest of a result dict's canonical JSON encoding."""
    text = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def default_cache_root():
    """``REPRO_CACHE_DIR`` or the per-user cache directory."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-didt")


def default_salt():
    """Code-version salt: old caches die with the code that made them."""
    return "v%s-schema%d" % (__version__, RESULT_SCHEMA)


class ResultCache:
    """Disk cache of job results keyed by spec content hash + salt.

    Args:
        root: cache directory (default :func:`default_cache_root`).
        salt: version salt (default :func:`default_salt`).
        enabled: ``False`` turns every operation into a no-op miss
            (the ``--no-cache`` path keeps one code path either way).
    """

    def __init__(self, root=None, salt=None, enabled=True):
        self.root = str(root) if root else default_cache_root()
        self.salt = salt or default_salt()
        self.enabled = bool(enabled)
        self.hits = 0
        self.misses = 0
        #: Misses caused by a *present but untrustworthy* entry (bad
        #: checksum, torn/unparsable JSON, salt or spec mismatch) plus
        #: orphaned temp files reclaimed by :meth:`sweep_orphans`.
        self.integrity_misses = 0
        #: Failed :meth:`put` attempts (ENOSPC, EIO, failed rename).
        #: The cache's failure domain is *degrade*: a write failure is
        #: counted here, the temp file is cleaned up, and the job's
        #: result stands uncached -- the sweep never fails over it.
        self.write_errors = 0

    def path_for(self, spec):
        """Where this spec's entry lives (whether or not it exists)."""
        digest = spec.content_hash()
        return os.path.join(self.root, self.salt, digest[:2],
                            digest + ".json")

    def get(self, spec):
        """The cached result dict for ``spec``, or ``None`` on miss.

        A missing entry is a plain miss.  An entry that is *present*
        but unreadable, unparsable, checksum-mismatched, or describing
        a different spec is an *integrity* miss: it still returns
        ``None`` (and is left for the next :meth:`put` to overwrite),
        but is counted in :attr:`integrity_misses` so partial on-disk
        state from a killed writer is observable, never silent.
        """
        if not self.enabled:
            return None
        try:
            fh = open(self.path_for(spec), "r")
        except OSError:
            self.misses += 1
            return None
        try:
            with fh:
                payload = json.load(fh)
            if payload.get("salt") != self.salt:
                raise ValueError("salt mismatch")
            if payload.get("spec") != spec.to_dict():
                raise ValueError("spec mismatch")
            result = payload["result"]
            if not isinstance(result, dict) or "status" not in result:
                raise ValueError("malformed result")
            if payload.get("checksum") != result_checksum(result):
                raise ValueError("payload checksum mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            self.integrity_misses += 1
            return None
        self.hits += 1
        return result

    def sweep_orphans(self, max_age_seconds=3600.0):
        """Reclaim ``*.tmp`` files abandoned by a killed writer.

        Only files older than ``max_age_seconds`` are removed, so a
        concurrent sweep's in-flight atomic write is never yanked out
        from under it.  Removed orphans count as integrity misses;
        returns how many were removed.
        """
        if not self.enabled:
            return 0
        removed = 0
        cutoff = time.time() - max_age_seconds
        base = os.path.join(self.root, self.salt)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    # Lost a race with the writer that owns the temp
                    # file (rename or unlink between listing and stat).
                    # A real orphan is re-found by the next sweep and
                    # by ``repro-didt doctor``.
                    pass
        self.integrity_misses += removed
        return removed

    def put(self, spec, result):
        """Store a result atomically; returns the entry path.

        Write failures (ENOSPC, EIO, a rename that never lands --
        injectable via ``REPRO_IOCHAOS=...@cache``) are this cache's
        *degrade* failure domain: the temp file is unlinked, the
        failure is counted in :attr:`write_errors`, and ``None`` is
        returned so the caller proceeds exactly as on a miss.  The
        result itself is never lost -- it simply stays uncached.
        """
        if not self.enabled:
            return None
        path = self.path_for(spec)
        payload = {
            "salt": self.salt,
            "spec": spec.to_dict(),
            "result": result,
            "checksum": result_checksum(result),
        }
        text = json.dumps(payload, sort_keys=True, indent=2)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            with os.fdopen(fd, "w") as fh:
                iofault.write("cache", fh, text + "\n")
            iofault.replace("cache", tmp, path)
        except OSError:
            self.write_errors += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return None
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise
        return path

    def verify_entry(self, path):
        """Scrub one on-disk entry; ``None`` if trustworthy, else a
        short reason string (the same checks :meth:`get` applies, minus
        the spec comparison, which needs the requesting spec)."""
        try:
            with open(path, "r") as fh:
                payload = json.load(fh)
            result = payload["result"]
            if not isinstance(result, dict) or "status" not in result:
                raise ValueError("malformed result")
            if payload.get("checksum") != result_checksum(result):
                raise ValueError("payload checksum mismatch")
            if payload.get("salt") != self.salt:
                raise ValueError("salt mismatch")
        except (OSError, ValueError, KeyError, TypeError) as exc:
            return str(exc) or exc.__class__.__name__
        return None

    def stats(self, verify=True):
        """Scan this cache's salt tree and summarize what is on disk.

        Args:
            verify: also parse every entry and check its payload
                checksum, counting entries that would degrade to an
                integrity miss on read (torn writes, hand edits).

        Returns:
            A JSON-safe dict: ``root``, ``salt``, ``enabled``,
            ``entries``, ``bytes`` (total size of valid-named
            entries), ``invalid_entries`` (present but untrustworthy;
            ``0`` when ``verify`` is off), and ``orphan_tmp`` (temp
            files abandoned by a killed writer, reclaimable via
            :meth:`sweep_orphans`).
        """
        info = {"root": self.root, "salt": self.salt,
                "enabled": self.enabled, "entries": 0, "bytes": 0,
                "invalid_entries": 0, "orphan_tmp": 0}
        base = os.path.join(self.root, self.salt)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if name.endswith(".tmp"):
                    info["orphan_tmp"] += 1
                    continue
                if not name.endswith(".json"):
                    continue
                info["entries"] += 1
                try:
                    info["bytes"] += os.path.getsize(path)
                except OSError:
                    # Entry vanished mid-scan (a concurrent clear or
                    # invalidate); the next scan's counts reflect it.
                    pass
                if not verify:
                    continue
                if self.verify_entry(path) is not None:
                    info["invalid_entries"] += 1
        return info

    def invalidate(self, spec):
        """Drop one entry; returns whether anything was removed."""
        if not self.enabled:
            return False
        try:
            os.unlink(self.path_for(spec))
            return True
        except OSError:
            # Surfaced through the return value: the caller learns
            # nothing was removed (usually: the entry never existed).
            return False

    def clear(self):
        """Drop every entry under this cache's salt; returns a count."""
        removed = 0
        base = os.path.join(self.root, self.salt)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        # Surfaced through the returned count: an
                        # undeletable entry is simply not counted, and
                        # ``doctor``/``stats`` keep reporting it.
                        pass
        return removed

    def __repr__(self):
        return ("ResultCache(root=%r, salt=%r, enabled=%r, hits=%d, "
                "misses=%d, integrity_misses=%d, write_errors=%d)"
                % (self.root, self.salt, self.enabled, self.hits,
                   self.misses, self.integrity_misses,
                   self.write_errors))
