"""Per-process job execution for the orchestrator.

:func:`execute_spec` is the one function that turns a
:class:`~repro.orchestrator.spec.JobSpec` into a result dict.  It is
deliberately module-level (picklable) so a ``multiprocessing`` pool can
call it, and every expensive artifact it needs is memoized *per
process*:

* solved designs come from :func:`repro.core.design_at` (one
  construction per impedance level per worker);
* tuned stressmark specs come from
  :func:`repro.core.tuned_stressmark_spec`;
* the discretized PDN simulator is built once per impedance level and
  *reset* between jobs (re-discretizing costs a matrix exponential;
  resetting costs two float stores) -- the same reuse the fault
  campaign pioneered.

Determinism contract: the result dict is a pure function of the spec.
A worker that has run a hundred other jobs first returns bit-identical
bytes to a fresh interpreter running the spec alone, which is what
makes both the content-addressed cache and the serial-vs-parallel
byte-stability guarantee sound.
"""

from repro.control.actuators import Actuator
from repro.control.controller import PlausibilityMonitor, ThresholdController
from repro.control.loop import ClosedLoopSimulation
from repro.control.sensor import ThresholdSensor
from repro.faults.campaign import FAULT_LIBRARY
from repro.faults.injectors import FaultyActuator, FaultySensor
from repro.faults.watchdog import (
    NumericWatchdog,
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.core.checkpoint import WarmupCache
from repro.orchestrator.spec import KIND_THRESHOLDS, KIND_TRACE, JobSpec
from repro.pdn.discrete import DiscretePdn, PdnSimulator
from repro.uarch.core import Machine

#: Job result states (supersets the campaign's).
STATUS_OK = "ok"
STATUS_DIVERGED = "diverged"
STATUS_BUDGET = "budget"
STATUS_ERROR = "error"
STATUS_CRASHED = "crashed"

#: impedance percent -> reusable PdnSimulator, per process.
_PDN_SIMS = {}

#: trace-store root -> TraceStore, per process (pool workers inherit
#: ``REPRO_TRACE_DIR`` through the environment).
_TRACE_STORES = {}

#: Warmed-machine checkpoints, per process (set ``REPRO_WARM_CACHE_DIR``
#: to also persist them on disk alongside the result cache).
_WARM_CACHE = WarmupCache()


def _pdn_sim_for(design):
    key = float(design.impedance_percent)
    if key not in _PDN_SIMS:
        _PDN_SIMS[key] = PdnSimulator(
            DiscretePdn(design.pdn, clock_hz=design.config.clock_hz))
    return _PDN_SIMS[key]


def _stream_for(spec, design):
    """(stream, warmup) for a run spec, matching campaign conventions."""
    from repro.core import get_profile, tuned_stressmark_spec
    from repro.workloads.stressmark import stressmark_stream

    if spec.workload == "stressmark":
        return (stressmark_stream(
            tuned_stressmark_spec(design.impedance_percent)),
            spec.warmup_instructions)
    return (get_profile(spec.workload).stream(seed=spec.seed),
            spec.warmup_instructions)


def _warm_machine(spec, design):
    """A warmed machine for the spec, via the checkpoint cache.

    Profile streams pickle cleanly, so repeated specs over the same
    (workload, seed, warm-up, config) -- every cell of an impedance
    sweep, since all levels share the machine configuration -- pay the
    functional warm-up once per process and a millisecond-scale clone
    after that.  The stressmark sequencer carries a generator and is
    detected as unpicklable, falling back to a direct warm-up.
    """
    if spec.workload == "stressmark":
        stream_desc = ("stressmark", float(design.impedance_percent))
    else:
        stream_desc = ("profile", spec.workload, spec.seed)

    def factory():
        stream, _ = _stream_for(spec, design)
        return Machine(design.config, stream)

    return _WARM_CACHE.warmed(design.config, stream_desc,
                              spec.warmup_instructions, factory)


def _build_controller(thresholds, spec):
    """A (possibly faulted) fail-safe-capable threshold controller."""
    sensor = ThresholdSensor(thresholds.v_low, thresholds.v_high,
                             delay=thresholds.delay,
                             error=thresholds.error, seed=spec.seed)
    bundle = (FAULT_LIBRARY[spec.fault](spec.fault_start, spec.seed)
              if spec.fault else None)
    if bundle and bundle.get("sensor"):
        sensor = FaultySensor(sensor, bundle["sensor"])
    actuator = Actuator(spec.actuator_kind)
    if bundle and bundle.get("actuator"):
        actuator = FaultyActuator(actuator, bundle["actuator"])
    monitor = PlausibilityMonitor(stuck_cycles=spec.stuck_cycles)
    return ThresholdController(sensor, actuator=actuator, monitor=monitor)


def _trace_store():
    from repro.traces.store import TraceStore, default_trace_root

    root = default_trace_root()
    if root not in _TRACE_STORES:
        _TRACE_STORES[root] = TraceStore(root)
    return _TRACE_STORES[root]


def _trace_result(spec, design):
    """Replay an imported trace; raises for a missing trace (the
    runner's retry/error machinery reports it like any worker fault)."""
    from repro.traces.replay import replay_trace

    store = _trace_store()
    trace = store.get(spec.workload)
    if trace is None:
        raise FileNotFoundError(
            "trace %s is not in the trace store at %s (import it with "
            "'repro-didt traces import', or point REPRO_TRACE_DIR at "
            "the right store)" % (spec.workload, store.root))
    return replay_trace(trace, design, cycles=spec.cycles,
                        warmup=spec.warmup_instructions, delay=spec.delay,
                        error=spec.error, actuator_kind=spec.actuator_kind,
                        seed=spec.seed, stuck_cycles=spec.stuck_cycles,
                        pdn_sim=_pdn_sim_for(design))


def _thresholds_result(spec, design):
    d = design.thresholds(delay=spec.delay, error=spec.error,
                          actuator_kind=spec.actuator_kind)
    return {
        "status": STATUS_OK,
        "error": None,
        "thresholds": {
            "v_low": d.v_low, "v_high": d.v_high, "delay": d.delay,
            "error": d.error, "window_mv": d.window_mv,
            "i_reduce": d.i_reduce, "i_boost": d.i_boost,
            "v_worst_low": d.v_worst_low, "v_worst_high": d.v_worst_high,
        },
    }


def execute_spec(spec, timeout_seconds=None, telemetry=None):
    """Run one job; returns the result dict (never raises for the
    structured failure modes).

    Args:
        spec: a :class:`JobSpec` or its canonical dict.
        timeout_seconds: per-job wall-clock budget enforced with a
            :class:`~repro.faults.watchdog.RunBudget` inside the cycle
            loop (``None`` disables).  Not part of the content hash:
            a timeout is an execution policy, not an experiment knob.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle wired
            into the closed loop (``None`` keeps the null default).
            Observability only: the result dict is byte-identical with
            telemetry on or off, so caching stays sound.

    Returns:
        A dict with ``status`` (``ok``/``diverged``/``budget``),
        ``error`` (message or ``None``), performance figures, the
        emergency-counter summary, and the controller summary (or
        ``None`` for uncontrolled runs).  Unexpected exceptions
        propagate to the caller -- the runner turns them into
        ``status="error"`` after its bounded retries.
    """
    from repro.core import design_at

    if not isinstance(spec, JobSpec):
        spec = JobSpec.from_dict(spec)
    design = design_at(spec.impedance_percent)
    if spec.kind == KIND_THRESHOLDS:
        return _thresholds_result(spec, design)
    if spec.kind == KIND_TRACE:
        return _trace_result(spec, design)

    machine = _warm_machine(spec, design)
    if telemetry is not None and telemetry.metrics.enabled:
        telemetry.metrics.gauge("worker.warm_cache_hits").set(
            _WARM_CACHE.hits)
        telemetry.metrics.gauge("worker.warm_cache_misses").set(
            _WARM_CACHE.misses)
        telemetry.metrics.gauge(
            "worker.warm_cache_integrity_misses").set(
            _WARM_CACHE.integrity_misses)
        telemetry.metrics.gauge("worker.warm_cache_write_errors").set(
            _WARM_CACHE.write_errors)
    controller = None
    if spec.delay is not None:
        thresholds = design.thresholds(delay=spec.delay, error=spec.error,
                                       actuator_kind=spec.actuator_kind)
        controller = _build_controller(thresholds, spec)
    watchdog = None
    if spec.watchdog_bounds is not None:
        watchdog = NumericWatchdog(v_min=spec.watchdog_bounds[0],
                                   v_max=spec.watchdog_bounds[1])
    budget = (RunBudget(max_seconds=timeout_seconds)
              if timeout_seconds is not None else None)
    loop = ClosedLoopSimulation(machine, design.power_model, design.pdn,
                                controller=controller,
                                pdn_sim=_pdn_sim_for(design),
                                watchdog=watchdog, budget=budget,
                                telemetry=telemetry)
    status, error = STATUS_OK, None
    try:
        loop.run(max_cycles=spec.cycles)
    except SimulationDiverged as exc:
        status, error = STATUS_DIVERGED, str(exc)
    except SimulationBudgetExceeded as exc:
        status, error = STATUS_BUDGET, str(exc)
    finally:
        # Never leave a faulted actuator holding the machine gated.
        if controller is not None:
            controller.actuator.release(machine)
    stats = machine.stats
    return {
        "status": status,
        "error": error,
        "cycles": stats.cycles,
        "committed": stats.committed,
        "ipc": stats.committed / stats.cycles if stats.cycles else 0.0,
        "energy": loop._energy,
        "emergencies": loop.counter.summary(),
        "controller": (controller.summary()
                       if controller is not None else None),
    }


def execute_payload(payload, timeout_seconds=None, telemetry=None):
    """Dispatch one pool payload: a spec dict or a replay group.

    The supervised pool is payload-agnostic (it forwards whatever
    ``to_dict()`` produced); this is the worker-side counterpart that
    routes a ``"__replay_group__"`` payload to
    :func:`~repro.orchestrator.replay.execute_replay_group` and
    everything else to :func:`execute_spec`.
    """
    kind = (payload.get("kind") if isinstance(payload, dict)
            else getattr(payload, "kind", None))
    if kind == "__replay_group__":
        from repro.orchestrator.replay import execute_replay_group

        return execute_replay_group(payload,
                                    timeout_seconds=timeout_seconds)
    return execute_spec(payload, timeout_seconds=timeout_seconds,
                        telemetry=telemetry)


def _abnormal_result(status, message):
    return {
        "status": status,
        "error": message,
        "cycles": 0,
        "committed": 0,
        "ipc": 0.0,
        "energy": 0.0,
        "emergencies": None,
        "controller": None,
    }


def error_result(message):
    """The structured payload for a job that kept raising."""
    return _abnormal_result(STATUS_ERROR, message)


def crashed_result(message):
    """The structured payload for a poison job: one that took its
    worker process down (SIGKILL, OOM-kill, interpreter abort, hard
    hang) on every permitted attempt.  Never cached -- the next sweep,
    or ``sweep --resume``, tries it again from scratch."""
    return _abnormal_result(STATUS_CRASHED, message)
