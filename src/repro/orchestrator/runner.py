"""The batch runner: cache check, pool fan-out, retry, merge.

The runner takes an ordered list of
:class:`~repro.orchestrator.spec.JobSpec` and returns one
:class:`JobOutcome` per spec *in the same order*, regardless of worker
count or scheduling -- so a parallel run and a serial run of the same
batch merge to byte-identical reports.

Execution policy per job:

1. a cache hit (status ``ok``/``diverged``) short-circuits execution;
2. misses run on a ``multiprocessing`` pool (``REPRO_JOBS`` workers,
   default the CPU count; 1 runs inline with no pool);
3. a job that raises an *unexpected* exception is retried up to
   ``retries`` times (transient failures: worker OOM-kill, pickling
   hiccups), then recorded as a structured ``status="error"`` outcome
   -- sibling jobs are never affected;
4. deterministic outcomes are written back to the cache; transient
   ``budget``/``error`` outcomes are not.

Progress goes to stderr (one line per finished job) when enabled; it is
on by default only when stderr is a terminal.
"""

import json
import multiprocessing
import os
import sys
import time
import traceback

from repro.orchestrator.cache import CACHEABLE_STATUSES, ResultCache
from repro.orchestrator.worker import error_result, execute_spec
from repro.telemetry import NULL_TELEMETRY


def default_jobs():
    """``REPRO_JOBS`` if set (and positive), else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError("REPRO_JOBS must be an integer, got %r" % env)
        if jobs < 1:
            raise ValueError("REPRO_JOBS must be >= 1, got %d" % jobs)
        return jobs
    return os.cpu_count() or 1


def _pool_execute(payload):
    """Pool target: run one spec dict, shipping exceptions as data.

    Returns ``(kind, value, wall_seconds)``; the wall time is measured
    in the worker so the parent can profile job execution without
    polluting the result dict.
    """
    spec_dict, timeout_seconds = payload
    start = time.perf_counter()
    try:
        result = execute_spec(spec_dict, timeout_seconds=timeout_seconds)
        return "ok", result, time.perf_counter() - start
    except Exception:
        return "raise", traceback.format_exc(), time.perf_counter() - start


class JobOutcome:
    """One finished cell: the spec, its result, and how it got there.

    Attributes:
        spec: the :class:`JobSpec`.
        result: the worker's result dict.
        cached: served from the result cache (no simulation ran).
        attempts: executions performed (0 for a cache hit).
        wall_seconds: wall time of the final execution attempt
            (``None`` for cache hits).  Execution detail only -- never
            cached and excluded from :meth:`to_dict`.
    """

    def __init__(self, spec, result, cached=False, attempts=1,
                 wall_seconds=None):
        self.spec = spec
        self.result = result
        self.cached = cached
        self.attempts = attempts
        self.wall_seconds = wall_seconds

    def to_dict(self):
        """Canonical JSON form.  Excludes ``cached``/``attempts``/
        ``wall_seconds`` on purpose: a report cell must not depend on
        how its result was obtained (see
        :func:`merged_report`'s ``execution`` option for the separate,
        explicitly non-stable execution sidecar).
        """
        return {"spec": self.spec.to_dict(), "result": self.result}

    def execution_dict(self):
        """How the cell was obtained: ``attempts``, ``cached``, and
        ``wall_seconds``.  Deliberately separate from :meth:`to_dict`:
        this sidecar varies with cache state, scheduling, and machine
        speed, so it must never be cached or byte-compared."""
        return {"attempts": self.attempts, "cached": self.cached,
                "wall_seconds": self.wall_seconds}

    def __repr__(self):
        return ("JobOutcome(%s: %s%s)"
                % (self.spec.label(), self.result.get("status"),
                   ", cached" if self.cached else ""))


class Runner:
    """Executes batches of job specs with caching and parallelism.

    Args:
        jobs: worker processes (default :func:`default_jobs`); 1 runs
            inline in this process.
        cache: a :class:`ResultCache`, or ``None`` for no caching.
        timeout_seconds: per-job wall-clock budget (``None`` disables).
        retries: extra attempts for jobs that raise unexpectedly.
        progress: per-job progress lines on stderr; ``None`` enables
            them only when stderr is a terminal.
        execute: override for the job-execution function (tests).  A
            non-default executor forces inline execution -- closures
            do not survive pickling into a pool.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle.  The
            metrics registry gets batch counters (``orchestrator.jobs``
            / ``cache_hits`` / ``cache_misses`` / ``retries`` /
            ``errors``); the profiler gets ``orchestrator.cache_get``,
            ``orchestrator.cache_put``, and ``orchestrator.job``
            spans.  Purely observational: outcomes and reports are
            byte-identical with telemetry on or off.
    """

    def __init__(self, jobs=None, cache=None, timeout_seconds=None,
                 retries=1, progress=None, execute=None, telemetry=None):
        self.jobs = int(jobs) if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % self.jobs)
        self.cache = cache
        self.timeout_seconds = timeout_seconds
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        self.retries = int(retries)
        if progress is None:
            progress = sys.stderr.isatty()
        self.progress = bool(progress)
        self._execute = execute or execute_spec
        self._inline_only = execute is not None
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self._metrics = (self.telemetry.metrics.scoped("orchestrator")
                         if self.telemetry.metrics.enabled else None)
        self._profile = (self.telemetry.profiler
                         if self.telemetry.profiler.enabled else None)

    def _count(self, name, amount=1):
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    # -- reporting -----------------------------------------------------

    def _note(self, done, total, outcome):
        if not self.progress:
            return
        how = "cached" if outcome.cached else (
            "attempt %d" % outcome.attempts if outcome.attempts > 1
            else "ran")
        print("[orchestrator] %d/%d %s: %s (%s)"
              % (done, total, outcome.spec.label(),
                 outcome.result.get("status"), how), file=sys.stderr)

    # -- execution -----------------------------------------------------

    def _finish(self, outcomes, index, outcome, state):
        outcomes[index] = outcome
        status = outcome.result.get("status")
        if status == "error":
            self._count("errors")
        if outcome.attempts > 1:
            self._count("retries", outcome.attempts - 1)
        if outcome.wall_seconds is not None and self._profile is not None:
            self._profile.add("orchestrator.job", outcome.wall_seconds)
        if (self.cache is not None and not outcome.cached
                and status in CACHEABLE_STATUSES):
            if self._profile is not None:
                with self._profile.span("orchestrator.cache_put"):
                    self.cache.put(outcome.spec, outcome.result)
            else:
                self.cache.put(outcome.spec, outcome.result)
        state["done"] += 1
        self._note(state["done"], state["total"], outcome)

    def _run_inline(self, specs, pending, outcomes, state):
        for index in pending:
            spec = specs[index]
            attempts = 0
            while True:
                attempts += 1
                start = time.perf_counter()
                try:
                    result = self._execute(
                        spec, timeout_seconds=self.timeout_seconds)
                    break
                except Exception:
                    if attempts > self.retries:
                        result = error_result(traceback.format_exc())
                        break
            wall = time.perf_counter() - start
            self._finish(outcomes, index,
                         JobOutcome(spec, result, attempts=attempts,
                                    wall_seconds=wall), state)

    def _run_pool(self, specs, pending, outcomes, state):
        # Submit impedance-sorted so a worker draining the queue tends
        # to see runs of equal design points (each design and PDN
        # discretization is memoized per worker process).
        order = sorted(pending,
                       key=lambda i: (specs[i].impedance_percent, i))
        attempts = {i: 0 for i in pending}
        with multiprocessing.Pool(processes=min(self.jobs, len(pending))) \
                as pool:
            remaining = order
            while remaining:
                handles = []
                for index in remaining:
                    attempts[index] += 1
                    payload = (specs[index].to_dict(), self.timeout_seconds)
                    handles.append(
                        (index, pool.apply_async(_pool_execute, (payload,))))
                failed = []
                for index, handle in handles:
                    try:
                        kind, value, wall = handle.get()
                    except Exception:
                        kind, value, wall = ("raise",
                                             traceback.format_exc(), None)
                    if kind == "ok":
                        self._finish(
                            outcomes, index,
                            JobOutcome(specs[index], value,
                                       attempts=attempts[index],
                                       wall_seconds=wall), state)
                    elif attempts[index] > self.retries:
                        self._finish(
                            outcomes, index,
                            JobOutcome(specs[index], error_result(value),
                                       attempts=attempts[index],
                                       wall_seconds=wall), state)
                    else:
                        failed.append(index)
                remaining = failed

    def run(self, specs):
        """Run a batch; returns a list of :class:`JobOutcome`, one per
        spec, in input order."""
        specs = list(specs)
        outcomes = [None] * len(specs)
        state = {"done": 0, "total": len(specs)}
        self._count("jobs", len(specs))
        pending = []
        for index, spec in enumerate(specs):
            if self.cache is None:
                cached = None
            elif self._profile is not None:
                with self._profile.span("orchestrator.cache_get"):
                    cached = self.cache.get(spec)
            else:
                cached = self.cache.get(spec)
            if cached is not None:
                self._count("cache_hits")
                outcomes[index] = JobOutcome(spec, cached, cached=True,
                                             attempts=0)
                state["done"] += 1
                self._note(state["done"], state["total"], outcomes[index])
            else:
                if self.cache is not None:
                    self._count("cache_misses")
                pending.append(index)
        if pending:
            if self.jobs == 1 or len(pending) == 1 or self._inline_only:
                self._run_inline(specs, pending, outcomes, state)
            else:
                self._run_pool(specs, pending, outcomes, state)
        return outcomes


def merged_report(outcomes, settings=None, execution=False):
    """One merged, JSON-safe dict for a batch of outcomes.

    Jobs appear in outcome (= submission) order, so the report is
    byte-stable across worker counts and cache states.

    Args:
        execution: also include an ``"execution"`` list (one entry per
            job, in the same order: ``attempts``, ``cached``,
            ``wall_seconds``).  Off by default because that sidecar
            depends on cache state, retries, and machine speed -- it
            is never byte-stable and must not be diffed or cached.
            The ``"jobs"`` cells themselves are identical either way.
    """
    report = {
        "schema": 1,
        "settings": dict(settings or {}),
        "jobs": [o.to_dict() for o in outcomes],
    }
    if execution:
        report["execution"] = [o.execution_dict() for o in outcomes]
    return report


def report_json(outcomes, settings=None, indent=2, execution=False):
    """JSON text for :func:`merged_report` (byte-stable unless the
    non-stable ``execution`` sidecar is requested)."""
    return json.dumps(merged_report(outcomes, settings,
                                    execution=execution),
                      sort_keys=True, indent=indent)
