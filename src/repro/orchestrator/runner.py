"""The batch runner: cache check, supervised fan-out, retry, merge.

The runner takes an ordered list of
:class:`~repro.orchestrator.spec.JobSpec` and returns one
:class:`JobOutcome` per spec *in the same order*, regardless of worker
count or scheduling -- so a parallel run and a serial run of the same
batch merge to byte-identical reports.

Execution policy per job:

1. a result replayed from a sweep journal (``resume_results``)
   short-circuits everything;
2. a cache hit (status ``ok``/``diverged``) short-circuits execution;
3. misses run on a :class:`~repro.orchestrator.supervise.
   SupervisedPool` (``REPRO_JOBS`` workers, default the CPU count; 1
   runs inline with no pool) that survives worker death: a SIGKILLed,
   OOM-killed, or hung worker is detected, its in-flight job requeued,
   and a replacement spawned after deterministic seeded backoff;
4. a job that *raises* is retried up to ``retries`` times, then
   recorded as a structured ``status="error"`` outcome; a job that
   takes its worker down more than ``crash_retries`` times is poisoned
   into ``status="crashed"`` -- sibling jobs are never affected;
5. deterministic outcomes are written back to the cache; transient
   ``budget``/``error``/``crashed`` outcomes are not.

Crash tolerance: pass a :class:`~repro.orchestrator.journal.
SweepJournal` and every state transition is durably logged before the
batch moves on.  SIGINT/SIGTERM trigger a *graceful* shutdown -- the
journal is flushed, workers are torn down, and :class:`SweepInterrupted`
carries the structured partial outcomes out to the caller (the inline
and pool paths behave identically).  ``repro-didt sweep --resume``
replays the journal and finishes only the remainder.

Progress goes to stderr (one line per finished job) when enabled; it is
on by default only when stderr is a terminal.
"""

import contextlib
import json
import os
import signal
import sys
import threading
import time
import traceback

from repro.orchestrator.cache import CACHEABLE_STATUSES, ResultCache
from repro.orchestrator.replay import (
    REPLAY_GROUP_KIND,
    ReplayGroup,
    capture_key,
    execute_replay_group,
    replay_eligible,
)
from repro.orchestrator.spec import JobSpec
from repro.orchestrator.supervise import (
    END_ERROR,
    END_OK,
    BackoffPolicy,
    SupervisedPool,
)
from repro.orchestrator.worker import (
    crashed_result,
    error_result,
    execute_spec,
)
from repro.telemetry import NULL_TELEMETRY


def default_jobs():
    """``REPRO_JOBS`` if set (and positive), else the CPU count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ValueError("REPRO_JOBS must be an integer, got %r" % env)
        if jobs < 1:
            raise ValueError("REPRO_JOBS must be >= 1, got %d" % jobs)
        return jobs
    return os.cpu_count() or 1


class SweepInterrupted(RuntimeError):
    """A batch shut down early on SIGINT/SIGTERM.

    Attributes:
        outcomes: the :class:`JobOutcome` list for every cell that
            reached a terminal state before the shutdown (structured,
            cache-written, journalled -- nothing half-finished).
    """

    def __init__(self, outcomes):
        super().__init__("sweep interrupted after %d finished cell(s)"
                         % len(outcomes))
        self.outcomes = list(outcomes)


@contextlib.contextmanager
def _graceful_sigterm():
    """Route SIGTERM through ``KeyboardInterrupt`` so a host shutdown
    gets the same journal-flushing, worker-reaping exit as Ctrl-C.
    Only touches the handler from the main thread (signal rules)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        previous = signal.signal(signal.SIGTERM, _raise)
    except (ValueError, OSError):
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class JobOutcome:
    """One finished cell: the spec, its result, and how it got there.

    Attributes:
        spec: the :class:`JobSpec`.
        result: the worker's result dict.
        cached: served without executing (result cache or journal
            replay -- see ``source``).
        attempts: executions performed (0 for a cache/journal hit).
        wall_seconds: wall time of the final execution attempt
            (``None`` for cache hits).  Execution detail only -- never
            cached and excluded from :meth:`to_dict`.
        source: ``"run"``, ``"cache"``, or ``"journal"`` -- where the
            result came from.  Execution detail only.
    """

    def __init__(self, spec, result, cached=False, attempts=1,
                 wall_seconds=None, source=None):
        self.spec = spec
        self.result = result
        self.cached = cached
        self.attempts = attempts
        self.wall_seconds = wall_seconds
        self.source = source or ("cache" if cached else "run")

    def to_dict(self):
        """Canonical JSON form.  Excludes ``cached``/``attempts``/
        ``wall_seconds``/``source`` on purpose: a report cell must not
        depend on how its result was obtained (see
        :func:`merged_report`'s ``execution`` option for the separate,
        explicitly non-stable execution sidecar).
        """
        return {"spec": self.spec.to_dict(), "result": self.result}

    def execution_dict(self):
        """How the cell was obtained: ``attempts``, ``cached``, and
        ``wall_seconds``.  Deliberately separate from :meth:`to_dict`:
        this sidecar varies with cache state, scheduling, and machine
        speed, so it must never be cached or byte-compared."""
        return {"attempts": self.attempts, "cached": self.cached,
                "wall_seconds": self.wall_seconds}

    def __repr__(self):
        return ("JobOutcome(%s: %s%s)"
                % (self.spec.label(), self.result.get("status"),
                   ", " + self.source if self.source != "run" else ""))


class Runner:
    """Executes batches of job specs with caching and parallelism.

    Args:
        jobs: worker processes (default :func:`default_jobs`); 1 runs
            inline in this process.
        cache: a :class:`ResultCache`, or ``None`` for no caching.
        timeout_seconds: per-job wall-clock budget (``None`` disables).
        retries: extra attempts for jobs that raise unexpectedly.
        crash_retries: extra attempts for jobs whose worker process
            dies (SIGKILL, OOM, hard hang); one more death poisons the
            job into a structured ``crashed`` outcome.
        backoff: a :class:`~repro.orchestrator.supervise.BackoffPolicy`
            applied before replacing crashed workers (default: seeded
            policy, so restart timing is reproducible).
        hang_grace: seconds past ``timeout_seconds`` before a silent
            worker is declared hung and killed (pool path only).
        journal: a :class:`~repro.orchestrator.journal.SweepJournal`
            to receive dispatch/done/crash records as they happen, or
            ``None``.  The runner writes job transitions only; the
            caller owns ``begin``/``end``.
        resume_results: ``{content_hash: result}`` replayed from a
            journal; matching specs skip execution entirely.
        progress: per-job progress lines on stderr; ``None`` enables
            them only when stderr is a terminal.
        execute: override for the job-execution function (tests).  A
            non-default executor forces inline execution -- closures
            do not survive pickling into a pool.
        replay: batch replay-eligible cells (uncontrolled or
            observe-only, fixed workload) into
            :class:`~repro.orchestrator.replay.ReplayGroup` units that
            capture the uarch+power trace once and replay it across
            impedance/controller lanes.  Outcome *bytes* are identical
            either way (the lane-parity tier pins this); ``False``
            (the ``sweep --no-replay`` escape hatch) forces every cell
            onto the lockstep path.  Ignored when ``execute`` is
            overridden.
        telemetry: a :class:`~repro.telemetry.Telemetry` bundle.  The
            metrics registry gets batch counters (``orchestrator.jobs``
            / ``cache_hits`` / ``cache_misses`` / ``retries`` /
            ``errors`` plus the recovery set: ``crashes`` /
            ``requeues`` / ``worker_restarts`` / ``poisoned`` /
            ``resumed`` / ``cache.integrity_miss``); the profiler gets
            ``orchestrator.cache_get``, ``orchestrator.cache_put``,
            ``orchestrator.job``, and ``orchestrator.backoff`` spans.
            Purely observational: outcomes and reports are
            byte-identical with telemetry on or off.
    """

    def __init__(self, jobs=None, cache=None, timeout_seconds=None,
                 retries=1, crash_retries=2, backoff=None, hang_grace=5.0,
                 journal=None, resume_results=None, progress=None,
                 execute=None, telemetry=None, replay=True):
        self.jobs = int(jobs) if jobs is not None else default_jobs()
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % self.jobs)
        self.cache = cache
        self.timeout_seconds = timeout_seconds
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        self.retries = int(retries)
        if crash_retries < 0:
            raise ValueError("crash_retries must be >= 0, got %d"
                             % crash_retries)
        self.crash_retries = int(crash_retries)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.hang_grace = float(hang_grace)
        self.journal = journal
        self.resume_results = dict(resume_results or {})
        if progress is None:
            progress = sys.stderr.isatty()
        self.progress = bool(progress)
        self._execute = execute or execute_spec
        self._inline_only = execute is not None
        self.replay = bool(replay) and not self._inline_only
        self.telemetry = (telemetry if telemetry is not None
                          else NULL_TELEMETRY)
        self._metrics = (self.telemetry.metrics.scoped("orchestrator")
                         if self.telemetry.metrics.enabled else None)
        self._profile = (self.telemetry.profiler
                         if self.telemetry.profiler.enabled else None)

    def _count(self, name, amount=1):
        if self._metrics is not None:
            self._metrics.counter(name).inc(amount)

    # -- reporting -----------------------------------------------------

    def _note(self, done, total, outcome):
        if not self.progress:
            return
        how = (outcome.source if outcome.cached else (
            "attempt %d" % outcome.attempts if outcome.attempts > 1
            else "ran"))
        print("[orchestrator] %d/%d %s: %s (%s)"
              % (done, total, outcome.spec.label(),
                 outcome.result.get("status"), how), file=sys.stderr)

    # -- journalling ---------------------------------------------------

    def _journal_dispatched(self, spec, attempt):
        if self.journal is not None:
            self.journal.dispatched(spec.content_hash(), attempt)

    def _journal_done(self, spec, result):
        if self.journal is not None:
            self.journal.done(spec.content_hash(), result)

    # -- execution -----------------------------------------------------

    def _finish(self, outcomes, index, outcome, state):
        outcomes[index] = outcome
        status = outcome.result.get("status")
        if status == "error":
            self._count("errors")
        elif status == "crashed":
            self._count("poisoned")
        if outcome.attempts > 1:
            self._count("retries", outcome.attempts - 1)
        if outcome.wall_seconds is not None and self._profile is not None:
            self._profile.add("orchestrator.job", outcome.wall_seconds)
        if (self.cache is not None and not outcome.cached
                and status in CACHEABLE_STATUSES):
            if self._profile is not None:
                with self._profile.span("orchestrator.cache_put"):
                    self.cache.put(outcome.spec, outcome.result)
            else:
                self.cache.put(outcome.spec, outcome.result)
        self._journal_done(outcome.spec, outcome.result)
        state["done"] += 1
        self._note(state["done"], state["total"], outcome)

    def _plan_units(self, specs, pending):
        """Partition pending cells into execution units.

        Returns ``[(payload, members)]``: ``payload`` is the
        :class:`JobSpec` itself for lockstep singles or a
        :class:`ReplayGroup` whose lanes share one captured trace, and
        ``members`` are the spec indices the unit resolves.  With
        replay off (or a custom executor) every cell is its own unit.
        Grouping never reorders the merge: outcomes land by member
        index, so reports stay byte-stable either way.
        """
        if not self.replay:
            return [(specs[i], [i]) for i in pending]
        units = []
        groups = {}
        for index in pending:
            spec = specs[index]
            if replay_eligible(spec):
                groups.setdefault(capture_key(spec), []).append(index)
            else:
                units.append((spec, [index]))
        for members in groups.values():
            units.append((ReplayGroup([specs[i] for i in members]),
                          members))
        return units

    def _count_replay(self, payload):
        """Telemetry for one finished replay group (observability
        only; results are identical with metrics off)."""
        if self.telemetry.metrics.enabled:
            self.telemetry.metrics.counter("loop.replay_lanes").inc(
                payload["lanes"])
        self._count("replay.groups")
        if payload.get("capture") == "hit":
            self._count("capture.hits")
        else:
            self._count("capture.misses")
        if payload.get("capture_write_error"):
            # The worker's capture-cache put failed (degrade domain):
            # the lanes still replayed from memory, the store just was
            # not populated.  Surface it from the parent, where the
            # metrics sink lives.
            self._count("capture.write_errors")

    def _finish_unit(self, outcomes, members, results, attempts,
                     wall_seconds, specs, state):
        for index, result in zip(members, results):
            self._finish(outcomes, index,
                         JobOutcome(specs[index], result,
                                    attempts=attempts,
                                    wall_seconds=wall_seconds), state)

    def _run_inline(self, specs, units, outcomes, state):
        for payload, members in units:
            is_group = isinstance(payload, ReplayGroup)
            attempts = 0
            while True:
                attempts += 1
                for index in members:
                    self._journal_dispatched(specs[index], attempts)
                start = time.perf_counter()
                try:
                    if is_group:
                        group_result = execute_replay_group(
                            payload, timeout_seconds=self.timeout_seconds)
                        self._count_replay(group_result)
                        results = group_result["results"]
                    else:
                        results = [self._execute(
                            payload, timeout_seconds=self.timeout_seconds)]
                    break
                except KeyboardInterrupt:
                    # The in-flight cell is abandoned (its dispatched
                    # record marks it for resume); run() turns this
                    # into a SweepInterrupted with the finished cells.
                    raise
                except Exception:
                    message = traceback.format_exc()
                    if self.journal is not None:
                        for index in members:
                            self.journal.failed(
                                specs[index].content_hash(), attempts,
                                message)
                    if attempts > self.retries:
                        results = [error_result(message)
                                   for _ in members]
                        break
            wall = time.perf_counter() - start
            self._finish_unit(outcomes, members, results, attempts, wall,
                              specs, state)

    def _pool_event(self, kind, index=None, attempt=None, reason=None,
                    seconds=None, _unit_specs=None):
        unit_specs = (_unit_specs.get(index, ())
                      if index is not None else ())
        if kind == "dispatched":
            for spec in unit_specs:
                self._journal_dispatched(spec, attempt)
        elif kind == "failed":
            if self.journal is not None:
                for spec in unit_specs:
                    self.journal.failed(spec.content_hash(), attempt,
                                        reason)
        elif kind == "crashed":
            self._count("crashes")
            if self.journal is not None:
                for spec in unit_specs:
                    self.journal.crashed(spec.content_hash(), attempt,
                                         reason)
        elif kind == "requeued":
            self._count("requeues")
        elif kind == "worker_restart":
            self._count("worker_restarts")
        elif kind == "backoff":
            if self._profile is not None:
                self._profile.add("orchestrator.backoff", seconds)

    def _run_pool(self, specs, units, outcomes, state):
        # Dispatch impedance-sorted so a worker draining the queue tends
        # to see runs of equal design points (each design and PDN
        # discretization is memoized per worker process).  A replay
        # group sorts by its lowest lane.
        def unit_key(unit):
            _payload, members = unit
            return (min(specs[i].impedance_percent for i in members),
                    min(members))

        ordered = sorted(units, key=unit_key)
        jobs = []
        unit_members = {}
        unit_specs = {}
        for payload, members in ordered:
            # Singles keep their spec index as the pool id; groups get
            # ids past the spec range so the two can never collide.
            uid = (members[0] if not isinstance(payload, ReplayGroup)
                   else len(specs) + len(unit_members))
            jobs.append((uid, payload))
            unit_members[uid] = members
            unit_specs[uid] = [specs[i] for i in members]

        def on_event(kind, **info):
            self._pool_event(kind, _unit_specs=unit_specs, **info)

        def on_finish(uid, end):
            members = unit_members[uid]
            if end.kind == END_OK:
                payload = end.payload
                if (isinstance(payload, dict)
                        and payload.get("kind") == REPLAY_GROUP_KIND):
                    self._count_replay(payload)
                    results = payload["results"]
                else:
                    results = [payload]
            elif end.kind == END_ERROR:
                results = [error_result(end.payload) for _ in members]
            else:
                results = [crashed_result(end.payload) for _ in members]
            self._finish_unit(outcomes, members, results, end.attempts,
                              end.wall_seconds, specs, state)

        pool = SupervisedPool(workers=min(self.jobs, len(jobs)),
                              timeout_seconds=self.timeout_seconds,
                              retries=self.retries,
                              crash_retries=self.crash_retries,
                              backoff=self.backoff,
                              hang_grace=self.hang_grace,
                              on_event=on_event)
        pool.run(jobs, on_finish=on_finish)

    def run(self, specs):
        """Run a batch; returns a list of :class:`JobOutcome`, one per
        spec, in input order.

        Raises :class:`SweepInterrupted` (carrying the finished
        outcomes) on SIGINT/SIGTERM; the journal, if any, gets an
        ``interrupted`` record first, so ``--resume`` picks up exactly
        where the batch stopped.
        """
        specs = list(specs)
        outcomes = [None] * len(specs)
        state = {"done": 0, "total": len(specs)}
        self._count("jobs", len(specs))
        integrity_start = None
        write_errors_start = None
        if self.cache is not None and self.cache.enabled:
            integrity_start = self.cache.integrity_misses
            write_errors_start = self.cache.write_errors
            self.cache.sweep_orphans()
        pending = []
        for index, spec in enumerate(specs):
            replayed = self.resume_results.get(spec.content_hash())
            if replayed is not None:
                self._count("resumed")
                outcomes[index] = JobOutcome(spec, replayed, cached=True,
                                             attempts=0, source="journal")
                self._journal_done(spec, replayed)
                state["done"] += 1
                self._note(state["done"], state["total"], outcomes[index])
                continue
            if self.cache is None:
                cached = None
            elif self._profile is not None:
                with self._profile.span("orchestrator.cache_get"):
                    cached = self.cache.get(spec)
            else:
                cached = self.cache.get(spec)
            if cached is not None:
                self._count("cache_hits")
                outcomes[index] = JobOutcome(spec, cached, cached=True,
                                             attempts=0)
                self._journal_done(spec, cached)
                state["done"] += 1
                self._note(state["done"], state["total"], outcomes[index])
            else:
                if self.cache is not None:
                    self._count("cache_misses")
                pending.append(index)
        try:
            if pending:
                units = self._plan_units(specs, pending)
                with _graceful_sigterm():
                    if (self.jobs == 1 or len(units) == 1
                            or self._inline_only):
                        self._run_inline(specs, units, outcomes, state)
                    else:
                        self._run_pool(specs, units, outcomes, state)
        except KeyboardInterrupt:
            if self.journal is not None:
                self.journal.interrupted()
            raise SweepInterrupted(
                [o for o in outcomes if o is not None])
        finally:
            if integrity_start is not None:
                delta = self.cache.integrity_misses - integrity_start
                if delta:
                    self._count("cache.integrity_miss", delta)
            if write_errors_start is not None:
                delta = self.cache.write_errors - write_errors_start
                if delta:
                    self._count("cache.write_errors", delta)
        return outcomes


def _workload_token(spec):
    """The suite-membership token for a spec (``trace:<hash>`` for
    trace jobs, the plain workload name otherwise)."""
    return (("trace:" + spec.workload) if spec.kind == "trace"
            else spec.workload)


def _baseline_hash(spec):
    """Content hash of the uncontrolled baseline cell a controlled
    spec is judged against: same workload-side knobs (including any
    watchdog bounds), controller stripped.  Hash-based pairing keeps
    the win/loss record correct in mixed replay/lockstep suites where
    tuple keys built from a *subset* of the spec fields would collide
    (e.g. two baselines differing only in watchdog bounds)."""
    return JobSpec(kind=spec.kind, workload=spec.workload,
                   cycles=spec.cycles,
                   warmup_instructions=spec.warmup_instructions,
                   seed=spec.seed,
                   impedance_percent=spec.impedance_percent,
                   delay=None,
                   watchdog_bounds=spec.watchdog_bounds).content_hash()


def suite_aggregates(outcomes, suites):
    """Per-suite aggregate rows for a report.

    Args:
        outcomes: the sweep's :class:`JobOutcome` list.
        suites: ``{suite name: [workload tokens]}`` membership.

    Returns:
        ``{suite: row}`` where each row carries ``cells`` / ``failed``
        counts, total ``emergency_cycles``, the suite's worst
        ``worst_v_min`` droop, and a ``controller`` win/loss record:
        every controlled cell is paired with its uncontrolled baseline
        *by spec content hash* (the controlled spec with the controller
        knobs stripped) and wins when it shows strictly fewer emergency
        cycles.

    Deterministic: depends only on the outcome cells, so the suites
    block stays byte-stable across serial/parallel/cached paths.
    """
    aggregates = {}
    for name in sorted(suites):
        members = set(suites[name])
        cells = [o for o in outcomes
                 if o.spec.kind != "thresholds"
                 and _workload_token(o.spec) in members]
        failed = sum(1 for o in cells
                     if o.result.get("status") not in ("ok", "diverged"))
        emergency_cycles = 0
        worst_v_min = None
        baselines = {}
        for o in cells:
            summary = o.result.get("emergencies") or {}
            emergency_cycles += int(summary.get("emergency_cycles") or 0)
            v_min = summary.get("v_min")
            if v_min is not None and (worst_v_min is None
                                      or v_min < worst_v_min):
                worst_v_min = v_min
            if o.spec.delay is None:
                baselines[o.spec.content_hash()] = \
                    summary.get("emergency_cycles")
        wins = losses = ties = pairs = 0
        for o in cells:
            if o.spec.delay is None:
                continue
            base = baselines.get(_baseline_hash(o.spec))
            controlled = (o.result.get("emergencies")
                          or {}).get("emergency_cycles")
            if base is None or controlled is None:
                continue
            pairs += 1
            if controlled < base:
                wins += 1
            elif controlled > base:
                losses += 1
            else:
                ties += 1
        aggregates[name] = {
            "cells": len(cells),
            "failed": failed,
            "emergency_cycles": emergency_cycles,
            "worst_v_min": worst_v_min,
            "controller": {"wins": wins, "losses": losses, "ties": ties,
                           "pairs": pairs},
        }
    return aggregates


def merged_report(outcomes, settings=None, execution=False):
    """One merged, JSON-safe dict for a batch of outcomes.

    Jobs appear in outcome (= submission) order, so the report is
    byte-stable across worker counts and cache states.

    When ``settings`` carries a ``"suites"`` membership dict (written
    by ``sweep --suite``), the report gains a ``"suites"`` block of
    per-suite aggregates (:func:`suite_aggregates`).

    Args:
        execution: also include an ``"execution"`` list (one entry per
            job, in the same order: ``attempts``, ``cached``,
            ``wall_seconds``).  Off by default because that sidecar
            depends on cache state, retries, and machine speed -- it
            is never byte-stable and must not be diffed or cached.
            The ``"jobs"`` cells themselves are identical either way.
    """
    report = {
        "schema": 1,
        "settings": dict(settings or {}),
        "jobs": [o.to_dict() for o in outcomes],
    }
    suites = (settings or {}).get("suites") if isinstance(
        settings, dict) else None
    if suites:
        report["suites"] = suite_aggregates(outcomes, suites)
    if execution:
        report["execution"] = [o.execution_dict() for o in outcomes]
    return report


def report_json(outcomes, settings=None, indent=2, execution=False):
    """JSON text for :func:`merged_report` (byte-stable unless the
    non-stable ``execution`` sidecar is requested)."""
    return json.dumps(merged_report(outcomes, settings,
                                    execution=execution),
                      sort_keys=True, indent=indent)
