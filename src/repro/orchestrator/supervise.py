"""A supervised worker pool that survives worker death.

``multiprocessing.Pool`` loses the sweep when a worker is SIGKILLed:
the ``apply_async`` handle never completes and the pool wedges.  The
:class:`SupervisedPool` here keeps the orchestrator alive through
worker OOM-kills, interpreter aborts, and hard hangs:

* each worker process gets a *dedicated* task queue, so the parent
  always knows exactly which job a dead worker was holding -- crash
  attribution is exact, never guessed from a broken shared queue;
* a dead worker's in-flight job is requeued and the worker replaced,
  after a deterministic exponential backoff with bounded, *seeded*
  jitter (restart timing never feeds into results, and the jitter
  sequence is reproducible);
* a worker that blows past its deadline (job timeout + grace) is
  SIGKILLed and treated exactly like a crash -- hangs are just slow
  crashes;
* a job that takes its worker down more than ``crash_retries`` times
  is *poisoned*: it ends as a structured ``crashed`` outcome instead
  of sinking the sweep, and its siblings complete normally.

Jobs that merely *raise* (the worker survives) keep the runner's
bounded-retry semantics: requeue until ``retries`` is exhausted, then
a structured ``error`` outcome.

The pool reports progress through two callbacks: ``on_event`` (state
transitions: ``dispatched``/``failed``/``crashed``/``requeued``/
``worker_restart``/``backoff``) for journalling and telemetry, and
``on_finish`` (one call per job, as it reaches a terminal state) for
result merging.  Chaos injection (:mod:`repro.faults.chaos`) is read
from the environment *inside the worker child* -- the supervisor never
special-cases it, which is the point: it recovers from real deaths the
same way.
"""

import collections
import itertools
import multiprocessing
import pickle
import queue as queue_mod
import random
import signal
import time
import traceback

from repro.faults import iofault
from repro.faults.chaos import ProcessChaos
from repro.orchestrator.worker import execute_payload

#: Terminal kinds a job can end with inside the pool.
END_OK = "ok"
END_ERROR = "error"
END_CRASHED = "crashed"

#: One terminal job record: how it ended, the payload (result dict for
#: ``ok``, message text otherwise), executions, worker deaths it
#: caused, and the wall time of the final attempt (``None`` if the
#: final attempt died).
JobEnd = collections.namedtuple(
    "JobEnd", ["kind", "payload", "attempts", "crashes", "wall_seconds"])


class BackoffPolicy:
    """Deterministic exponential backoff with bounded, seeded jitter.

    ``delay(n)`` for restart *n* (0-based) is
    ``min(cap, base * factor**n)`` scaled by a jitter factor drawn
    uniformly from ``[1 - jitter, 1 + jitter]`` using a private seeded
    RNG -- two policies built with the same seed produce the same
    delay sequence, so supervised runs are reproducible end to end.
    """

    def __init__(self, base_seconds=0.05, factor=2.0, cap_seconds=2.0,
                 jitter=0.25, seed=0):
        if base_seconds < 0 or cap_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if factor < 1.0:
            raise ValueError("backoff factor must be >= 1, got %r"
                             % factor)
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1), got %r" % jitter)
        self.base_seconds = float(base_seconds)
        self.factor = float(factor)
        self.cap_seconds = float(cap_seconds)
        self.jitter = float(jitter)
        self.seed = seed
        self._rng = random.Random(seed)

    def delay(self, restart):
        """Seconds to wait before restart number ``restart`` (0-based)."""
        if restart < 0:
            raise ValueError("restart must be >= 0, got %d" % restart)
        base = min(self.cap_seconds,
                   self.base_seconds * self.factor ** restart)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return base

    def __repr__(self):
        return ("BackoffPolicy(base=%g, factor=%g, cap=%g, jitter=%g, "
                "seed=%r)" % (self.base_seconds, self.factor,
                              self.cap_seconds, self.jitter, self.seed))


def _worker_main(worker_id, task_queue, result_queue):
    """Worker child: execute jobs from a dedicated queue until told to
    stop.  SIGINT and SIGTERM are ignored -- a terminal Ctrl-C (or a
    supervisor's TERM) signals the whole process group, and shutdown
    must stay the parent's decision so the journal gets flushed before
    anything dies; the parent reaps workers explicitly."""
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_IGN)
        except (ValueError, OSError):
            pass
    chaos = ProcessChaos.from_env()
    # A forked child inherits the parent's iofault scope; a pool
    # worker is always worker-scoped, even under a serve-scoped parent.
    iofault.set_scope("worker")
    executed = 0
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, spec_dict, spec_hash, timeout_seconds = item
        executed += 1
        start = time.perf_counter()
        try:
            if chaos is not None:
                chaos.fire(executed, spec_hash)
            result = execute_payload(spec_dict,
                                     timeout_seconds=timeout_seconds)
            kind, value = "ok", result
        except Exception:
            kind, value = "raise", traceback.format_exc()
        result_queue.put((worker_id, index, kind, value,
                          time.perf_counter() - start))


class _Worker:
    __slots__ = ("id", "process", "task_queue", "job", "deadline")

    def __init__(self, worker_id, process, task_queue):
        self.id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.job = None
        self.deadline = None


class SupervisedPool:
    """Run jobs across supervised worker processes.

    Args:
        workers: worker process count (>= 1).
        timeout_seconds: per-job wall-clock budget, enforced inside the
            worker (``RunBudget``) *and* by the parent: a worker that
            is still holding a job ``hang_grace`` seconds past the
            budget is killed and the job requeued.  ``None`` disables
            both (a hung worker then hangs the sweep -- set a timeout
            for untrusted jobs).
        retries: extra attempts for jobs that raise (worker survives).
        crash_retries: extra attempts for jobs whose worker dies; one
            more death poisons the job into a ``crashed`` outcome.
        backoff: a :class:`BackoffPolicy` applied before replacing
            crashed workers (default: a seed-0 policy).
        hang_grace: seconds past ``timeout_seconds`` before the parent
            declares a worker hung.
        on_event: callback ``(kind, **info)`` for state transitions.
        poll_seconds: parent supervision tick.
    """

    def __init__(self, workers, timeout_seconds=None, retries=1,
                 crash_retries=2, backoff=None, hang_grace=5.0,
                 on_event=None, poll_seconds=0.05):
        workers = int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if retries < 0:
            raise ValueError("retries must be >= 0, got %d" % retries)
        if crash_retries < 0:
            raise ValueError("crash_retries must be >= 0, got %d"
                             % crash_retries)
        self.workers = workers
        self.timeout_seconds = timeout_seconds
        self.retries = int(retries)
        self.crash_retries = int(crash_retries)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.hang_grace = float(hang_grace)
        self.on_event = on_event or (lambda kind, **info: None)
        self.poll_seconds = float(poll_seconds)

    def run(self, jobs, on_finish=None):
        """Execute ``jobs`` (an iterable of ``(index, spec)``) to
        terminal states; returns ``{index: JobEnd}``.

        ``on_finish(index, job_end)`` fires in the parent as each job
        finishes.  Workers are always torn down on the way out, even
        when the caller interrupts the supervision loop.
        """
        jobs = list(jobs)
        if not jobs:
            return {}
        specs = dict(jobs)
        payloads = {
            index: (index, spec.to_dict(), spec.content_hash(),
                    self.timeout_seconds)
            for index, spec in jobs}
        pending = collections.deque(index for index, _spec in jobs)
        results = {}
        attempts = {index: 0 for index in specs}
        raises = {index: 0 for index in specs}
        crashes = {index: 0 for index in specs}
        ctx = multiprocessing.get_context()
        result_queue = ctx.Queue()
        workers = {}
        worker_ids = itertools.count(1)
        restarts = 0

        def finish(index, end):
            results[index] = end
            if on_finish is not None:
                on_finish(index, end)

        def spawn():
            worker_id = next(worker_ids)
            task_queue = ctx.SimpleQueue()
            process = ctx.Process(
                target=_worker_main,
                args=(worker_id, task_queue, result_queue), daemon=True)
            process.start()
            workers[worker_id] = _Worker(worker_id, process, task_queue)

        def drain(block_seconds=0.0):
            """Handle queued results; returns whether any arrived."""
            handled = False
            while True:
                try:
                    if block_seconds:
                        message = result_queue.get(timeout=block_seconds)
                    else:
                        message = result_queue.get_nowait()
                except queue_mod.Empty:
                    return handled
                except (EOFError, OSError, pickle.UnpicklingError):
                    # A worker killed mid-send (OOM/SIGKILL while the
                    # queue's feeder thread was writing) leaves a torn
                    # pickle; treat it as no message and let the
                    # liveness check attribute the dead worker.
                    return handled
                block_seconds = 0.0
                handled = True
                worker_id, index, kind, value, wall = message
                worker = workers.get(worker_id)
                if worker is not None and worker.job == index:
                    worker.job = None
                    worker.deadline = None
                if index in results:
                    continue
                if kind == "ok":
                    finish(index, JobEnd(END_OK, value, attempts[index],
                                         crashes[index], wall))
                else:
                    raises[index] += 1
                    self.on_event("failed", index=index,
                                  attempt=attempts[index], reason=value)
                    # Compare raise-failures (not total dispatches)
                    # against the retry budget: a crash-requeued
                    # dispatch must not consume a raise retry.
                    if raises[index] > self.retries:
                        finish(index, JobEnd(END_ERROR, value,
                                             attempts[index],
                                             crashes[index], wall))
                    else:
                        pending.append(index)

        def handle_death(worker, reason):
            index, worker.job = worker.job, None
            if index is None or index in results:
                return
            crashes[index] += 1
            self.on_event("crashed", index=index,
                          attempt=attempts[index], reason=reason)
            if crashes[index] > self.crash_retries:
                finish(index, JobEnd(
                    END_CRASHED,
                    "worker %s; job abandoned after %d crash(es)"
                    % (reason, crashes[index]),
                    attempts[index], crashes[index], None))
            else:
                pending.append(index)
                self.on_event("requeued", index=index)

        try:
            for _ in range(min(self.workers, len(jobs))):
                spawn()
            while len(results) < len(specs):
                for worker in workers.values():
                    if worker.job is not None or not pending:
                        continue
                    index = pending.popleft()
                    if index in results:
                        continue
                    attempts[index] += 1
                    worker.job = index
                    worker.deadline = (
                        None if self.timeout_seconds is None
                        else time.monotonic() + self.timeout_seconds
                        + self.hang_grace)
                    worker.task_queue.put(payloads[index])
                    self.on_event("dispatched", index=index,
                                  attempt=attempts[index])
                if drain(self.poll_seconds):
                    continue
                now = time.monotonic()
                crashed_any = False
                for worker_id in list(workers):
                    worker = workers[worker_id]
                    alive = worker.process.is_alive()
                    hung = (alive and worker.job is not None
                            and worker.deadline is not None
                            and now > worker.deadline)
                    if alive and not hung:
                        continue
                    if hung:
                        worker.process.kill()
                        reason = ("hung past the %.3gs deadline (killed)"
                                  % (self.timeout_seconds
                                     + self.hang_grace))
                    else:
                        reason = ("died with exit code %s"
                                  % (worker.process.exitcode,))
                    worker.process.join(5)
                    # The worker may have delivered its result in the
                    # instant before dying; honour it over a requeue.
                    drain(0.0)
                    handle_death(worker, reason)
                    del workers[worker_id]
                    crashed_any = True
                if crashed_any and (pending or not workers):
                    delay = self.backoff.delay(restarts)
                    restarts += 1
                    self.on_event("backoff", seconds=delay)
                    if delay > 0:
                        time.sleep(delay)
                unfinished = len(specs) - len(results)
                while unfinished > 0 and len(workers) < min(self.workers,
                                                            unfinished) \
                        and (pending or not workers):
                    spawn()
                    if crashed_any:
                        self.on_event("worker_restart")
        finally:
            for worker in workers.values():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + 1.0
            for worker in workers.values():
                worker.process.join(max(0.0, deadline - time.monotonic()))
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(5)
            result_queue.close()
            result_queue.cancel_join_thread()
        return results
