"""The durable sweep journal: an append-only JSONL write-ahead log.

Every sweep that asks for one gets a journal file recording each job
state transition as it happens::

    {"event":"begin","schema":1,"salt":"v1.2.0-schema1","settings":{...},"c":"..."}
    {"event":"queued","job":"<sha256>","spec":{...},"c":"..."}
    {"event":"dispatched","attempt":1,"job":"<sha256>","c":"..."}
    {"event":"done","job":"<sha256>","result":{...},"c":"..."}
    {"event":"interrupted","c":"..."}

Records are keyed by the spec's content hash (never a positional
index), so a journal survives grid edits: resuming with a superset or
subset of the original grid reuses exactly the cells whose hashes
match.  Each line carries a truncated SHA-256 self-checksum (``"c"``)
over its own canonical body; the writer flushes and ``fsync``\\ s after
every record so a SIGKILL'd sweep loses at most the line being written.

:func:`replay_journal` reconstructs the sweep state.  Its tolerance
contract mirrors a classic WAL: a corrupt or half-written *final* line
is dropped silently (the crash tore the tail), while corruption
anywhere earlier raises :class:`JournalError` -- that is damage, not a
crash artifact.  Terminal ``done`` records are last-write-wins, so
duplicated entries (e.g. from a resumed sweep re-journalling a cache
hit) are harmless.

Only deterministic results (``ok``/``diverged`` -- the same statuses
the :class:`~repro.orchestrator.cache.ResultCache` memoizes) are
reusable on replay; ``budget``/``error``/``crashed`` cells re-run.

Two writer-safety properties round the WAL out.  *Exclusivity*: a
:class:`SweepJournal` takes an advisory ``flock`` on its file, so two
sweeps (or servers) pointed at the same ``--journal`` path fail fast
with a clear :class:`JournalError` instead of interleaving records.
*Compaction*: the log grows without bound across resume cycles;
:func:`compact_journal` atomically rewrites it down to the
last-write-wins records a replay would keep (write temp + fsync +
rename, taking the same lock), and ``repro-didt sweep`` compacts on
clean completion.
"""

import hashlib
import json
import os
import tempfile

try:
    import fcntl
except ImportError:          # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.faults import iofault
from repro.orchestrator.cache import CACHEABLE_STATUSES
from repro.orchestrator.spec import JobSpec

#: Bump when the journal record schema changes shape.
JOURNAL_SCHEMA = 1

#: Hex digits of the per-record self-checksum.
_CHECKSUM_LEN = 12


class JournalError(ValueError):
    """A journal that cannot be trusted (corruption before the tail)."""


class JournalWriteError(JournalError):
    """An append or fsync failed: durability can no longer be promised.

    The journal's failure domain is *fail loud*: unlike the caches
    (which degrade to a counted miss), a journal that cannot persist a
    record must stop the sweep -- continuing would hand out results the
    WAL never saw, breaking durability-before-visibility.  The
    half-written bytes (if any) are at worst an unterminated final
    line, exactly the torn tail :func:`replay_journal` drops and
    :meth:`SweepJournal._trim_torn_tail` reclaims, so the journal on
    disk stays replayable.

    Attributes:
        path: the journal file.
        event: the record type that failed to persist.
    """

    def __init__(self, path, event, cause):
        self.path = str(path)
        self.event = str(event)
        super(JournalWriteError, self).__init__(
            "journal %s: failed to persist %r record: %s"
            % (self.path, self.event, cause))


def _lock_or_raise(fh, path):
    """Take the advisory writer lock on an open journal file.

    ``flock`` locks attach to the open file description, so two opens
    of the same path conflict even inside one process -- exactly the
    failure we want loud: two sweeps or servers sharing a ``--journal``
    would interleave records into an unreplayable log.
    """
    if fcntl is None:
        return
    try:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        raise JournalError(
            "journal %s is locked by another live writer (a running "
            "sweep or server owns it); point this run at its own "
            "--journal path" % path)


def _canonical(record):
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _checksum(body):
    return hashlib.sha256(
        _canonical(body).encode("utf-8")).hexdigest()[:_CHECKSUM_LEN]


def encode_record(record):
    """One journal line (no newline): canonical JSON + self-checksum."""
    body = {k: v for k, v in record.items() if k != "c"}
    body["c"] = _checksum({k: v for k, v in body.items() if k != "c"})
    return _canonical(body)


def decode_record(line):
    """Parse and verify one journal line; raises :class:`JournalError`."""
    try:
        record = json.loads(line)
    except ValueError:
        raise JournalError("unparsable journal record: %r" % line[:80])
    if not isinstance(record, dict) or "c" not in record:
        raise JournalError("journal record missing checksum: %r"
                           % line[:80])
    body = {k: v for k, v in record.items() if k != "c"}
    if _checksum(body) != record["c"]:
        raise JournalError("journal record checksum mismatch: %r"
                           % line[:80])
    return body


class SweepJournal:
    """Append-only writer for one sweep's state transitions.

    Args:
        path: the journal file.  Parent directories are created.
        fresh: refuse to write into an existing non-empty file (a fresh
            sweep must not silently append onto an old journal; resume
            on purpose with ``fresh=False``).
        fsync: fsync after every record (the durability point of the
            whole exercise; only tests should turn it off).

    Raises:
        JournalError: the file exists under ``fresh=True``, or another
        live writer holds the journal's advisory lock.
    """

    def __init__(self, path, fresh=False, fsync=True):
        self.path = str(path)
        self.fsync = bool(fsync)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        if fresh and os.path.exists(self.path) \
                and os.path.getsize(self.path) > 0:
            raise JournalError(
                "journal %s already exists; resume it with --resume or "
                "remove it first" % self.path)
        self._fh = None
        self._open(trim=not fresh)
        self.records_written = 0

    def _open(self, trim=False):
        fh = open(self.path, "a", encoding="utf-8")
        try:
            _lock_or_raise(fh, self.path)
        except JournalError:
            fh.close()
            raise
        # Trim only once the lock is held: truncating a torn tail out
        # from under a *live* writer would corrupt its next record.
        if trim:
            self._trim_torn_tail()
        self._fh = fh

    def _trim_torn_tail(self):
        """Drop a torn final line left by a killed writer.

        A SIGKILL mid-record leaves the file ending without a newline;
        appending onto that fragment would merge two records into one
        corrupt *mid-file* line, which :func:`replay_journal` rightly
        refuses (only the final line may be torn).  Truncate back to
        the last newline before the first append instead -- exactly the
        bytes a replay would have dropped anyway.
        """
        try:
            with open(self.path, "r+b") as fh:
                data = fh.read()
                if not data or data.endswith(b"\n"):
                    return
                fh.truncate(data.rfind(b"\n") + 1)
                fh.flush()
                os.fsync(fh.fileno())
        except FileNotFoundError:
            pass

    # -- low-level -----------------------------------------------------

    def _write(self, record):
        event = record.get("event", "?")
        if self._fh is None:
            # Appending to a closed journal is a durability failure
            # like any other: raise the structured subclass so the
            # server's 503/exit-2 handlers engage on every append
            # after a failed one, not just the first.
            raise JournalWriteError(self.path, event,
                                    "journal is closed")
        try:
            iofault.write("journal", self._fh,
                          encode_record(record) + "\n")
            self._fh.flush()
            if self.fsync:
                iofault.fsync("journal", self._fh.fileno())
        except OSError as exc:
            # Fail loud: close the handle so nothing can append after
            # the failed record (a later append onto a torn tail would
            # merge two records into mid-file corruption).  What is on
            # disk remains replayable -- at worst an unterminated final
            # line, which replay drops and the next open trims.
            self.close()
            raise JournalWriteError(self.path, event, exc)
        self.records_written += 1

    def close(self):
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                # The buffered flush on close can hit the same disk
                # fault that broke the append; the handle is dead
                # either way and the caller already has (or is about
                # to get) the structured JournalWriteError.
                pass
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- records -------------------------------------------------------

    def begin(self, settings=None, salt=None):
        """Header: sweep-level settings and the result-cache salt."""
        self._write({"event": "begin", "schema": JOURNAL_SCHEMA,
                     "settings": dict(settings or {}), "salt": salt})

    def resumed(self):
        """Marker: a later process picked this journal back up."""
        self._write({"event": "resumed"})

    def queued(self, spec):
        """A grid cell entered the sweep (records the full spec)."""
        self._write({"event": "queued", "job": spec.content_hash(),
                     "spec": spec.to_dict()})

    def begin_sweep(self, specs, settings=None, salt=None):
        """Convenience: ``begin`` + one ``queued`` record per spec."""
        self.begin(settings=settings, salt=salt)
        for spec in specs:
            self.queued(spec)

    def dispatched(self, job_hash, attempt):
        self._write({"event": "dispatched", "job": job_hash,
                     "attempt": int(attempt)})

    def done(self, job_hash, result):
        """Terminal record carrying the full result payload, so resume
        can finish a sweep even with ``--no-cache``."""
        self._write({"event": "done", "job": job_hash, "result": result})

    def crashed(self, job_hash, attempt, reason):
        """A worker died (or hung past its deadline) holding this job."""
        self._write({"event": "crashed", "job": job_hash,
                     "attempt": int(attempt), "reason": str(reason)})

    def failed(self, job_hash, attempt, error):
        """The job raised; it may still be retried."""
        self._write({"event": "failed", "job": job_hash,
                     "attempt": int(attempt), "error": str(error)})

    def interrupted(self):
        """The sweep is shutting down early (SIGINT/SIGTERM)."""
        self._write({"event": "interrupted"})

    def end(self):
        """The sweep ran to completion (every cell terminal)."""
        self._write({"event": "end"})

    def compact(self):
        """Rewrite the file down to its last-write-wins records while
        keeping this journal open for further appends.

        The writer lock is released for the rewrite (the file is
        swapped by inode) and retaken on the compacted file; see
        :func:`compact_journal` for what survives.  Returns its stats
        dict.
        """
        if self._fh is None:
            raise JournalError("journal %s is closed" % self.path)
        self._fh.close()
        self._fh = None
        try:
            stats = compact_journal(self.path, fsync=self.fsync)
        finally:
            self._open()
        return stats

    def __repr__(self):
        return "SweepJournal(path=%r, records=%d)" % (self.path,
                                                      self.records_written)


class JournalState:
    """What :func:`replay_journal` reconstructs.

    Attributes:
        specs: the journalled :class:`JobSpec` list, in first-queued
            order (deduplicated by content hash).
        settings: the sweep settings from the ``begin`` record.
        salt: the result-cache salt recorded at ``begin``.
        results: ``{content_hash: result}`` for cells whose latest
            terminal status is deterministic (``ok``/``diverged``) --
            the cells a resume may skip.
        statuses: ``{content_hash: last-seen state}`` (``queued``,
            ``dispatched``, ``crashed``, ``failed``, or a terminal
            result status).
        interrupted: an ``interrupted`` record was seen.
        ended: an ``end`` record was seen (nothing left to resume).
        resumed: at least one ``resumed`` marker was seen.
        dropped_tail: the final line was corrupt/truncated and ignored.
    """

    def __init__(self):
        self.specs = []
        self.settings = {}
        self.salt = None
        self.results = {}
        self.statuses = {}
        self.interrupted = False
        self.ended = False
        self.resumed = False
        self.dropped_tail = False

    def spec_hashes(self):
        """Content hashes of the journalled specs, in queued order."""
        return [spec.content_hash() for spec in self.specs]

    def pending_specs(self):
        """Specs without a reusable (deterministic) terminal result."""
        return [spec for spec in self.specs
                if spec.content_hash() not in self.results]

    def __repr__(self):
        return ("JournalState(specs=%d, reusable=%d, interrupted=%r, "
                "ended=%r)" % (len(self.specs), len(self.results),
                               self.interrupted, self.ended))


def _apply(state, record, specs_by_hash):
    event = record.get("event")
    if event == "begin":
        state.settings = record.get("settings") or {}
        state.salt = record.get("salt")
    elif event == "resumed":
        state.resumed = True
    elif event == "queued":
        job = record.get("job")
        spec_dict = record.get("spec")
        if not isinstance(job, str) or not isinstance(spec_dict, dict):
            raise JournalError("malformed queued record: %r" % (record,))
        if job not in specs_by_hash:
            try:
                spec = JobSpec.from_dict(spec_dict)
            except (ValueError, TypeError) as exc:
                raise JournalError("unreplayable spec in journal: %s"
                                   % exc)
            if spec.content_hash() != job:
                raise JournalError("queued record hash does not match "
                                   "its spec (%s)" % job[:12])
            specs_by_hash[job] = spec
            state.specs.append(spec)
            state.statuses.setdefault(job, "queued")
    elif event == "dispatched":
        job = record.get("job")
        if job not in state.results:
            state.statuses[job] = "dispatched"
    elif event == "done":
        job = record.get("job")
        result = record.get("result")
        if not isinstance(result, dict) or "status" not in result:
            raise JournalError("malformed done record: %r" % (record,))
        status = result["status"]
        state.statuses[job] = status
        if status in CACHEABLE_STATUSES:
            state.results[job] = result
        else:
            state.results.pop(job, None)
    elif event in ("crashed", "failed"):
        job = record.get("job")
        if job not in state.results:
            state.statuses[job] = event
    elif event == "interrupted":
        state.interrupted = True
    elif event == "end":
        state.ended = True
    # Unknown events are skipped: a newer writer may add record types,
    # and an older reader must still recover every cell it understands.


def replay_journal(path, expected_salt=None):
    """Reconstruct a :class:`JournalState` from a journal file.

    Args:
        path: the journal written by :class:`SweepJournal`.
        expected_salt: if given and the journal's ``begin`` salt
            differs, journalled *results* are discarded (they were
            computed by other code and must re-run) while the specs
            survive.

    Raises:
        JournalError: corruption anywhere before the final line.  The
        final line alone is allowed to be torn -- that is the signature
        of a killed writer, and the journal is designed to survive it.
    """
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    # A healthy journal ends "...record\n" -> trailing "" element.
    last = len(lines) - 1
    while last >= 0 and lines[last] == "":
        last -= 1
    state = JournalState()
    specs_by_hash = {}
    for pos in range(last + 1):
        line = lines[pos]
        try:
            if line == "":
                raise JournalError("blank journal record")
            record = decode_record(line)
        except JournalError:
            if pos == last:
                state.dropped_tail = True
                break
            raise JournalError(
                "corrupt journal record at line %d of %s (only the "
                "final line may be truncated)" % (pos + 1, path))
        _apply(state, record, specs_by_hash)
    if expected_salt is not None and state.salt is not None \
            and state.salt != expected_salt:
        state.results = {}
    return state


def compacted_records(state):
    """The minimal record list whose replay equals ``state``.

    Kept: the ``begin`` header (settings + salt), one ``queued`` per
    spec in first-queued order, the latest reusable ``done`` per cell,
    an ``interrupted`` marker if the sweep stopped early, and ``end``
    if it completed.  Dropped: ``resumed`` markers and per-cell
    ``dispatched``/``failed``/``crashed`` transitions -- cells whose
    latest state was transient simply replay as pending, which is what
    they were.
    """
    records = [{"event": "begin", "schema": JOURNAL_SCHEMA,
                "settings": dict(state.settings), "salt": state.salt}]
    for spec in state.specs:
        records.append({"event": "queued", "job": spec.content_hash(),
                        "spec": spec.to_dict()})
    for spec in state.specs:
        job = spec.content_hash()
        if job in state.results:
            records.append({"event": "done", "job": job,
                            "result": state.results[job]})
    if state.interrupted and not state.ended:
        records.append({"event": "interrupted"})
    if state.ended:
        records.append({"event": "end"})
    return records


def compact_journal(path, fsync=True):
    """Atomically rewrite a journal down to last-write-wins records.

    The WAL grows without bound across resume cycles (every resumed
    sweep re-journals its replayed cells); compaction rewrites it to
    the records :func:`compacted_records` keeps, via a same-directory
    temp file + fsync + ``os.replace`` so a crash mid-compaction
    leaves either the old file or the new one, never a torn hybrid.
    The advisory writer lock is taken for the duration -- compacting a
    journal a live sweep or server is appending to raises
    :class:`JournalError` instead of eating its records.

    Returns a stats dict: ``records_before``/``records_after`` and
    ``bytes_before``/``bytes_after``.
    """
    path = str(path)
    with open(path, "r", encoding="utf-8") as guard:
        _lock_or_raise(guard, path)
        raw = guard.read()
        bytes_before = len(raw.encode("utf-8"))
        records_before = sum(1 for line in raw.split("\n") if line)
        state = replay_journal(path)
        lines = [encode_record(record) + "\n"
                 for record in compacted_records(state)]
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".compact")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as out:
                iofault.write("journal", out, "".join(lines))
                out.flush()
                if fsync:
                    iofault.fsync("journal", out.fileno())
            iofault.replace("journal", tmp, path)
        except BaseException:
            # The original journal has not been touched: the rewrite
            # happens entirely in the temp file, and a failed rename
            # leaves the old inode in place.  Clean up and re-raise;
            # the ``with`` guard below releases the flock either way.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if fsync:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
    return {
        "records_before": records_before,
        "records_after": len(lines),
        "bytes_before": bytes_before,
        "bytes_after": os.path.getsize(path),
    }
