"""Content-addressed on-disk cache of captured per-cycle power traces.

The replay sweep path (:mod:`repro.orchestrator.replay`) runs the
expensive uarch+power half of a cell **once** per workload, capturing
its per-cycle power trace, then drives every impedance/controller lane
from that capture.  This module stores the captures, as a sibling of
:class:`~repro.orchestrator.cache.ResultCache` and the warm-up cache
with the same discipline:

* Layout ``<root>/<salt>/captures/<kk>/<key>.npz`` -- ``root`` is
  ``REPRO_CACHE_DIR`` (default ``~/.cache/repro-didt``), ``salt`` folds
  in the code version, ``kk`` is the first two key hex digits, and
  ``key`` is the capture key (a content hash over the workload-side
  spec fields -- see :func:`repro.orchestrator.replay.capture_key`).
* Writes are atomic (temp file + ``os.replace``); a writer killed
  mid-``put`` leaves only a ``*.tmp`` orphan that
  :meth:`CurrentTraceCache.sweep_orphans` reclaims.
* Reads validate the stored salt, key, capture metadata, array shapes,
  and an array-payload checksum.  Any entry that is *present but
  untrustworthy* (truncated, torn, hand-edited, wrong salt) degrades to
  a counted *integrity miss* and the caller silently re-captures --
  never a wrong or crashed replay.

Entries hold two float64 arrays (per-cycle power in watts and per-cycle
committed-instruction deltas) plus scalar metadata; they are stored as
an uncompressed ``.npz`` so a hit costs one read + checksum, no JSON
float round-trip (replay parity is bitwise, so the arrays must come
back exactly).
"""

import hashlib
import io
import json
import os
import tempfile
import time
import zipfile

import numpy as np

from repro.faults import iofault
from repro.orchestrator.cache import default_cache_root, default_salt

#: Bump when the captured-trace payload changes shape.
CAPTURE_SCHEMA = 1

#: Anything a present-but-untrustworthy entry can raise while being
#: parsed and validated (BadZipFile/EOFError: a truncated or torn
#: ``.npz`` fails in the zip layer before numpy ever sees the arrays).
_ENTRY_ERRORS = (OSError, ValueError, KeyError, TypeError, EOFError,
                 zipfile.BadZipFile)


class CapturedTrace:
    """One workload's captured open-loop machine trajectory.

    Attributes:
        powers: ``(n,)`` float64 per-cycle power draw, watts.
        committed: ``(n,)`` float64 per-cycle committed-instruction
            deltas (stored as floats because they ride the same batch
            matrix the power model consumes).
        c0: machine cycle count when capture started (post warm-up).
        cycles0: ``MachineStats.cycles`` at capture start.
        committed0: ``MachineStats.committed`` at capture start.
        cycle_time: seconds per cycle (for energy integration).
    """

    __slots__ = ("powers", "committed", "c0", "cycles0", "committed0",
                 "cycle_time")

    def __init__(self, powers, committed, c0, cycles0, committed0,
                 cycle_time):
        self.powers = np.ascontiguousarray(powers, dtype=float)
        self.committed = np.ascontiguousarray(committed, dtype=float)
        if self.powers.ndim != 1 or self.committed.ndim != 1:
            raise ValueError("trace arrays must be 1-D")
        if self.powers.shape != self.committed.shape:
            raise ValueError("trace arrays must have equal length")
        self.c0 = int(c0)
        self.cycles0 = int(cycles0)
        self.committed0 = int(committed0)
        self.cycle_time = float(cycle_time)

    @property
    def n(self):
        """Captured cycle count."""
        return int(self.powers.size)

    def scalars(self):
        """JSON-safe scalar metadata (everything but the arrays)."""
        return {"c0": self.c0, "cycles0": self.cycles0,
                "committed0": self.committed0,
                "cycle_time": self.cycle_time, "n": self.n}

    def checksum(self):
        """Hex digest over the raw array payloads.

        Bitwise by construction: two captures of the same workload are
        content-equal iff their checksums match, which is what the
        capture-determinism property tests pin down.
        """
        h = hashlib.sha256()
        h.update(self.powers.tobytes())
        h.update(self.committed.tobytes())
        return h.hexdigest()


class CurrentTraceCache:
    """Disk cache of :class:`CapturedTrace` keyed by capture key + salt.

    Args:
        root: cache directory (default :func:`~repro.orchestrator.
            cache.default_cache_root`).
        salt: version salt (default :func:`~repro.orchestrator.cache.
            default_salt`).
        enabled: ``False`` turns every operation into a no-op miss.
    """

    def __init__(self, root=None, salt=None, enabled=True):
        self.root = str(root) if root else default_cache_root()
        self.salt = salt or default_salt()
        self.enabled = bool(enabled)
        self.hits = 0
        self.misses = 0
        #: Misses caused by a present but untrustworthy entry (bad
        #: checksum, truncation, salt/key/meta mismatch) plus orphaned
        #: temp files reclaimed by :meth:`sweep_orphans`.
        self.integrity_misses = 0
        #: Failed :meth:`put` attempts (ENOSPC, EIO, failed rename).
        #: Degrade domain: counted, temp cleaned up, the lane replays
        #: from the in-memory capture and the next sweep re-captures.
        self.write_errors = 0

    def path_for(self, key):
        """Where this capture key's entry lives (existing or not)."""
        return os.path.join(self.root, self.salt, "captures", key[:2],
                            key + ".npz")

    def get(self, key, meta):
        """The cached :class:`CapturedTrace` for ``key``, or ``None``.

        Args:
            key: the capture key (hex digest).
            meta: the capture metadata dict the key was derived from;
                validated against the stored copy so a key collision
                or a stale entry can never satisfy the wrong spec.

        A missing entry is a plain miss; a present-but-untrustworthy
        one is a counted integrity miss (see the module docstring).
        """
        if not self.enabled:
            return None
        try:
            fh = open(self.path_for(key), "rb")
        except OSError:
            self.misses += 1
            return None
        try:
            with fh:
                trace = self._parse_entry(fh, key, meta)
        except _ENTRY_ERRORS:
            self.misses += 1
            self.integrity_misses += 1
            return None
        self.hits += 1
        return trace

    def _parse_entry(self, fh, key, meta=None):
        """Parse one open entry, validating everything :meth:`get` does.

        Raises one of ``_ENTRY_ERRORS`` on any defect.  ``meta=None``
        skips the capture-metadata equality check (the maintenance
        scan has no spec to compare against; the stored key, salt,
        shapes, and payload checksum are still enforced).
        """
        with np.load(fh, allow_pickle=False) as entry:
            header = json.loads(str(entry["meta"][()]))
            powers = entry["powers"]
            committed = entry["committed"]
        if header.get("schema") != CAPTURE_SCHEMA:
            raise ValueError("schema mismatch")
        if header.get("salt") != self.salt:
            raise ValueError("salt mismatch")
        if header.get("key") != key:
            raise ValueError("key mismatch")
        if meta is not None and header.get("capture") != meta:
            raise ValueError("capture meta mismatch")
        scalars = header["scalars"]
        if powers.dtype != np.float64 or committed.dtype != np.float64:
            raise ValueError("bad array dtype")
        trace = CapturedTrace(powers, committed,
                              c0=scalars["c0"],
                              cycles0=scalars["cycles0"],
                              committed0=scalars["committed0"],
                              cycle_time=scalars["cycle_time"])
        if trace.n != scalars["n"]:
            raise ValueError("array length mismatch")
        if header.get("checksum") != trace.checksum():
            raise ValueError("payload checksum mismatch")
        return trace

    def verify_entry(self, path, key=None):
        """Scrub one on-disk entry; ``None`` if trustworthy, else a
        short reason string (everything :meth:`get` checks, minus the
        capture-metadata comparison)."""
        if key is None:
            key = os.path.basename(path)
            if key.endswith(".npz"):
                key = key[:-len(".npz")]
        try:
            with open(path, "rb") as fh:
                self._parse_entry(fh, key)
        except _ENTRY_ERRORS as exc:
            return str(exc) or exc.__class__.__name__
        return None

    def put(self, key, meta, trace):
        """Store a capture atomically; returns the entry path.

        Write failures (ENOSPC, EIO, a rename that never lands --
        injectable via ``REPRO_IOCHAOS=...@captures``) are the
        *degrade* failure domain: counted in :attr:`write_errors`, the
        temp file is unlinked, and ``None`` comes back -- the lane
        still replays from the in-memory capture, the store is simply
        not populated.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        header = {
            "schema": CAPTURE_SCHEMA,
            "salt": self.salt,
            "key": key,
            "capture": meta,
            "scalars": trace.scalars(),
            "checksum": trace.checksum(),
        }
        buf = io.BytesIO()
        np.savez(buf, powers=trace.powers, committed=trace.committed,
                 meta=np.array(json.dumps(header, sort_keys=True)))
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                iofault.write("captures", fh, buf.getvalue())
            iofault.replace("captures", tmp, path)
        except OSError:
            self.write_errors += 1
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return None
        except BaseException:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            raise
        return path

    def stats(self, verify=True):
        """Scan the captures tree and summarize what is on disk.

        Mirrors :meth:`~repro.orchestrator.cache.ResultCache.stats`
        so ``repro-didt cache stats --captures`` reports the same
        shape of dict.

        Args:
            verify: also parse every entry and check its stored key,
                salt, array shapes, and payload checksum, counting
                entries that would degrade to an integrity miss on
                read.

        Returns:
            A JSON-safe dict: ``root``, ``salt``, ``enabled``,
            ``entries``, ``bytes``, ``invalid_entries`` (``0`` when
            ``verify`` is off), and ``orphan_tmp`` (temp files
            abandoned by a killed writer, reclaimable via
            :meth:`sweep_orphans`).
        """
        info = {"root": self.root, "salt": self.salt,
                "enabled": self.enabled, "entries": 0, "bytes": 0,
                "invalid_entries": 0, "orphan_tmp": 0}
        base = os.path.join(self.root, self.salt, "captures")
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if name.endswith(".tmp"):
                    info["orphan_tmp"] += 1
                    continue
                if not name.endswith(".npz"):
                    continue
                info["entries"] += 1
                try:
                    info["bytes"] += os.path.getsize(path)
                except OSError:
                    # Entry vanished mid-scan (a concurrent clear);
                    # the next scan's counts reflect it.
                    pass
                if not verify:
                    continue
                if self.verify_entry(path, name[:-len(".npz")]) \
                        is not None:
                    info["invalid_entries"] += 1
        return info

    def clear(self):
        """Drop every capture under this cache's salt; returns a count."""
        removed = 0
        base = os.path.join(self.root, self.salt, "captures")
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if name.endswith(".npz"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        # Surfaced through the returned count: an
                        # undeletable entry is simply not counted, and
                        # ``doctor``/``stats`` keep reporting it.
                        pass
        return removed

    def sweep_orphans(self, max_age_seconds=3600.0):
        """Reclaim ``*.tmp`` files abandoned by a killed writer.

        Mirrors :meth:`ResultCache.sweep_orphans`: only files older
        than ``max_age_seconds`` go, so a concurrent writer's in-flight
        atomic write is never yanked away.  Returns a removal count.
        """
        if not self.enabled:
            return 0
        removed = 0
        cutoff = time.time() - max_age_seconds
        base = os.path.join(self.root, self.salt, "captures")
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in filenames:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    # Lost a race with the temp file's owner; a real
                    # orphan is re-found by the next sweep and by
                    # ``repro-didt doctor``.
                    pass
        self.integrity_misses += removed
        return removed

    def __repr__(self):
        return ("CurrentTraceCache(root=%r, salt=%r, enabled=%r, "
                "hits=%d, misses=%d, integrity_misses=%d, "
                "write_errors=%d)"
                % (self.root, self.salt, self.enabled, self.hits,
                   self.misses, self.integrity_misses,
                   self.write_errors))
