"""Workload-grid construction shared by the CLI and the server.

Both ``repro-didt sweep``/``submit`` and the server's suite admission
build the same cross product (workloads x impedances x controllers),
so the grid lives here: one canonicalisation of workload tokens, one
documented default workload, one error vocabulary for bad names.

Workload tokens:

* a SPEC2000 benchmark name (``swim``, ``gcc``, ...),
* ``stressmark``,
* ``trace:<ref>`` -- an imported trace by name, content hash, or hash
  prefix; canonicalised to ``trace:<64-hex>`` so job hashes key on
  trace *content*, never on a mutable label.
"""

from repro.orchestrator.spec import KIND_TRACE, JobSpec

#: The documented default workload grid (used by ``sweep`` and
#: ``campaign`` when no workloads are named -- the paper's running
#: example benchmark).
DEFAULT_WORKLOADS = ("swim",)

#: Prefix marking an imported-trace workload token.
TRACE_PREFIX = "trace:"


def parse_controller(token):
    """``'none'`` or ``ACTUATOR[:DELAY[:ERROR]]`` -> spec knobs."""
    from repro.control.actuators import ACTUATOR_KINDS

    if token == "none":
        return None
    parts = token.split(":")
    if len(parts) > 3:
        raise ValueError("bad controller %r (want "
                         "ACTUATOR[:DELAY[:ERROR]])" % token)
    kind = parts[0]
    if kind != "ideal" and kind not in ACTUATOR_KINDS:
        raise ValueError("unknown actuator %r (known: ideal, %s)"
                         % (kind, ", ".join(sorted(ACTUATOR_KINDS))))
    try:
        delay = int(parts[1]) if len(parts) > 1 else 2
        error = float(parts[2]) if len(parts) > 2 else 0.0
    except ValueError:
        raise ValueError("bad controller %r (want "
                         "ACTUATOR[:DELAY[:ERROR]])" % token)
    return kind, delay, error


def canonical_workloads(workloads, store=None):
    """Validate and canonicalise workload tokens.

    Benchmark names are checked against the synthesized SPEC2000
    profiles (plus ``stressmark``); ``trace:`` tokens are resolved
    through the trace store to their full content hash.

    Raises:
        ValueError: an unknown benchmark or trace token (a clean
            usage error, never a raw ``KeyError`` traceback).
    """
    from repro.workloads.spec import SPEC2000

    canonical = []
    for token in workloads:
        token = str(token)
        if token.startswith(TRACE_PREFIX):
            ref = token[len(TRACE_PREFIX):]
            if store is None:
                from repro.traces.store import TraceStore
                store = TraceStore()
            try:
                canonical.append(TRACE_PREFIX + store.resolve(ref))
            except KeyError as exc:
                raise ValueError(str(exc.args[0]) if exc.args else str(exc))
        elif token == "stressmark" or token in SPEC2000:
            canonical.append(token)
        else:
            raise ValueError(
                "unknown workload %r (known: %s, 'stressmark', or "
                "'trace:NAME' for an imported trace)"
                % (token, ", ".join(sorted(SPEC2000))))
    return canonical, store


def build_grid(workloads, impedances, controllers, cycles, warmup=None,
               seed=11, store=None):
    """The (specs, settings) pair for a workload grid.

    ``controllers`` are tokens (``none`` / ``ACTUATOR[:DELAY[:ERROR]]``);
    duplicate cells (e.g. a trace imported under two names) collapse to
    one job.  ``settings`` is the sweep-report settings dict.

    Raises:
        ValueError: bad workload/controller token, or a trace shorter
            than the requested warm-up skip.
    """
    parsed = [(tok, parse_controller(tok)) for tok in controllers]
    canonical, store = canonical_workloads(workloads, store=store)
    for token in canonical:
        if not token.startswith(TRACE_PREFIX):
            continue
        digest = token[len(TRACE_PREFIX):]
        meta = store.meta_for(digest) if store is not None else None
        if meta is not None and int(meta["n_samples"]) <= int(warmup or 0):
            raise ValueError(
                "trace %s (%s) holds %d samples, not more than the "
                "%d-cycle --warmup skip"
                % (meta.get("name") or digest[:12], digest[:12],
                   meta["n_samples"], int(warmup or 0)))
    specs = []
    seen = set()
    for token in canonical:
        for percent in impedances:
            for _tok, ctrl in parsed:
                kwargs = dict(cycles=cycles, warmup_instructions=warmup,
                              seed=seed, impedance_percent=percent)
                if token.startswith(TRACE_PREFIX):
                    kwargs.update(kind=KIND_TRACE,
                                  workload=token[len(TRACE_PREFIX):])
                else:
                    kwargs.update(workload=token)
                if ctrl is not None:
                    kind, delay, error = ctrl
                    kwargs.update(actuator_kind=kind, delay=delay,
                                  error=error)
                spec = JobSpec(**kwargs)
                digest = spec.content_hash()
                if digest in seen:
                    continue
                seen.add(digest)
                specs.append(spec)
    settings = {
        "workloads": list(canonical),
        "impedances": [float(p) for p in impedances],
        "controllers": list(controllers),
        "cycles": cycles, "warmup": warmup, "seed": seed,
    }
    return specs, settings
