"""Capture/replay split for sweep cells that cannot perturb the machine.

A sweep grid usually varies the *cheap* half of the system -- PDN
impedance, sensor delay/error -- against a fixed workload.  The
expensive half (cycle-level uarch + power simulation) is identical for
every such cell, because an uncontrolled or observe-only loop never
feeds back into the pipeline.  This module exploits that:

1. *Capture*: run the uarch+power half **once** per workload
   (:func:`capture_trace`), mirroring the open-loop fast path's collect
   phase exactly, and store the per-cycle power trace in the
   :class:`~repro.orchestrator.tracecache.CurrentTraceCache` keyed by
   :func:`capture_key` (a content hash over the workload-side spec
   fields only -- impedance and controller knobs deliberately excluded).
2. *Replay*: drive all N impedances x M observe-only controller configs
   from that one trace as a batched lane dimension
   (:func:`replay_lanes`): one ``(lanes,)``-vectorized ZOH recursion
   (:func:`~repro.pdn.discrete.zoh_recurrence_lanes`) plus vectorized
   per-lane watchdog/emergency/sensor folds.

Parity contract: every lane's result dict is **bit-identical** to
:func:`~repro.orchestrator.worker.execute_spec` running the same spec
alone -- voltages, energy, emergency counts, controller summaries,
diverged-lane exception messages, everything (the
``tests/pdn/test_lane_parity.py`` tier pins this down).  Anything that
could actuate (a real actuator kind, a fault injection, the
impedance-tuned stressmark) is ineligible (:func:`replay_eligible`) and
stays on the lockstep path.

The fold logic deliberately re-implements the open-loop fast path's
semantics (:meth:`repro.control.loop.ClosedLoopSimulation.
_run_open_loop`) rather than calling into it: a replay lane has no
machine to trim, only a result dict to build, but the floating-point
operations and their order are the same.
"""

import hashlib
import json
import random

import numpy as np

from repro.control.controller import ThresholdController
from repro.control.emergencies import EmergencyCounter
from repro.control.thresholds import NOMINAL_VOLTAGE
from repro.faults.watchdog import (
    NumericWatchdog,
    RunBudget,
    SimulationBudgetExceeded,
    SimulationDiverged,
)
from repro.orchestrator.spec import KIND_RUN, JobSpec
from repro.orchestrator.tracecache import CapturedTrace, CurrentTraceCache
from repro.orchestrator.worker import (
    STATUS_BUDGET,
    STATUS_DIVERGED,
    STATUS_OK,
    _build_controller,
    _pdn_sim_for,
    _warm_machine,
)
from repro.pdn.discrete import zoh_recurrence_lanes

#: Payload discriminator for a batched replay unit travelling through
#: the worker pool next to plain spec dicts.
REPLAY_GROUP_KIND = "__replay_group__"

#: Spec fields that determine the captured machine trajectory.  The
#: capture schema lives in the cache entry header
#: (:data:`~repro.orchestrator.tracecache.CAPTURE_SCHEMA`); these are
#: the experiment knobs.
_CAPTURE_FIELDS = ("workload", "cycles", "warmup_instructions", "seed")

#: Per-process capture cache, rebuilt when ``REPRO_CACHE_DIR`` moves
#: (pool workers inherit the environment, tests monkeypatch it).
_CAPTURE_CACHES = {}


def replay_eligible(spec):
    """Whether a cell's result can be replayed from a captured trace.

    True exactly when the loop cannot perturb the machine trajectory:
    a plain run (not thresholds/trace kinds), no injected fault, not
    the impedance-tuned stressmark (its instruction stream depends on
    the very impedance a replay group would vary), and either
    uncontrolled or carrying the group-less ``"observe"`` actuator.
    """
    return (spec.kind == KIND_RUN and
            spec.fault is None and
            spec.workload != "stressmark" and
            (spec.delay is None or spec.actuator_kind == "observe"))


def capture_meta(spec):
    """The canonical capture metadata for a spec (a plain dict)."""
    return {field: getattr(spec, field) for field in _CAPTURE_FIELDS}


def capture_key(spec):
    """Content hash of the workload-side spec fields.

    Two specs share a captured trace iff their keys match; impedance
    and controller knobs are fold-time lane parameters, never part of
    the key.
    """
    text = json.dumps(capture_meta(spec), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _capture_cache():
    """The per-process :class:`CurrentTraceCache` (env-aware: a changed
    ``REPRO_CACHE_DIR`` gets a fresh instance, matching the result
    cache's behavior across test monkeypatching)."""
    cache = CurrentTraceCache()
    key = (cache.root, cache.salt)
    if key not in _CAPTURE_CACHES:
        cache.sweep_orphans()
        _CAPTURE_CACHES[key] = cache
    return _CAPTURE_CACHES[key]


class ReplayGroup:
    """An ordered set of replay-eligible specs sharing one capture.

    Duck-types the slice of the :class:`~repro.orchestrator.spec.
    JobSpec` protocol the worker pool uses (``to_dict`` /
    ``content_hash``), so a group rides the supervised pool's payload
    plumbing unchanged -- one dispatch, one capture, N lane results.
    """

    __slots__ = ("specs",)

    kind = REPLAY_GROUP_KIND

    def __init__(self, specs):
        specs = list(specs)
        if not specs:
            raise ValueError("a replay group needs at least one lane")
        key = capture_key(specs[0])
        for spec in specs[1:]:
            if capture_key(spec) != key:
                raise ValueError("replay lanes must share one capture "
                                 "key")
        self.specs = specs

    def to_dict(self):
        """Canonical, JSON-safe, pool-portable form."""
        return {"kind": REPLAY_GROUP_KIND,
                "lanes": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data):
        if data.get("kind") != REPLAY_GROUP_KIND:
            raise ValueError("not a replay-group payload: %r"
                             % (data.get("kind"),))
        return cls(JobSpec.from_dict(lane) for lane in data["lanes"])

    def content_hash(self):
        """Hex digest over the canonical dict (chaos hooks and pool
        bookkeeping key on it like a spec hash)."""
        text = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def __len__(self):
        return len(self.specs)

    def __repr__(self):
        return ("ReplayGroup(%d lanes, workload=%r)"
                % (len(self.specs), self.specs[0].workload))


def capture_trace(spec, budget=None):
    """Run the uarch+power half once; returns ``(trace, budget_exc)``.

    Mirrors the open-loop fast path's collect phase exactly (same loop
    conditions, same per-iteration budget check), then batches activity
    columns to watts.  ``budget_exc`` is the
    :class:`SimulationBudgetExceeded` that cut the collect short, or
    ``None`` for a complete capture -- a cut capture must not be
    cached.
    """
    import operator

    from repro.core import design_at

    design = design_at(spec.impedance_percent)
    machine = _warm_machine(spec, design)
    stats = machine.stats
    power_model = design.power_model
    fields = power_model.batch_fields + ("committed",)
    getter = operator.attrgetter(*fields)
    step = machine.step

    c0 = machine.cycle
    cycles0 = stats.cycles
    committed0 = stats.committed
    max_cycles = spec.cycles
    if budget is not None:
        budget.start()
    rows = []
    append = rows.append
    budget_exc = None
    while not machine.done:
        if machine.cycle >= max_cycles:
            break
        if budget is not None:
            try:
                budget.check(machine.cycle)
            except SimulationBudgetExceeded as exc:
                budget_exc = exc
                break
        append(getter(step()))

    if rows:
        arr = np.asarray(rows, dtype=float)
        cols = {name: arr[:, i] for i, name in enumerate(fields)}
        powers = power_model.power_batch(cols)
        committed = cols["committed"]
    else:
        powers = np.empty(0)
        committed = np.empty(0)
    trace = CapturedTrace(powers, committed, c0=c0, cycles0=cycles0,
                          committed0=committed0,
                          cycle_time=design.config.cycle_time)
    return trace, budget_exc


def _controller_noise(spec, count):
    """The sensor's noise draws, replicated from a fresh RNG.

    The sensor seeds ``random.Random(spec.seed)`` and draws one uniform
    per observation; replicating from a fresh generator (instead of the
    controller's own sensor) leaves the real controller's RNG pristine
    for the exact scalar fallback.
    """
    rng = random.Random(spec.seed)
    error = spec.error
    return np.array([rng.uniform(-error, error) for _ in range(count)])


def _monitor_would_trip(levels, observed, monitor):
    """Whether the plausibility monitor would declare the sensor faulty
    anywhere along this lane (vectorized existence check; the caller
    falls back to the exact scalar walk when it would)."""
    g = levels.size
    if g == 0:
        return False
    boundaries = np.flatnonzero(np.diff(levels)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [g]))
    if np.any((levels[starts] != 0) &
              (ends - starts >= monitor.stuck_cycles)):
        return True
    # NaN fails both comparisons, matching the scalar monitor.
    oob = ~((observed >= monitor.v_min) & (observed <= monitor.v_max))
    if oob.any():
        edges = np.flatnonzero(np.diff(oob.astype(np.int8))) + 1
        starts = np.concatenate(([0], edges))
        ends = np.concatenate((edges, [g]))
        if np.any(oob[starts] & (ends - starts >= monitor.bound_cycles)):
            return True
    return False


def _fold_controller(controller, spec, voltages, currents):
    """Fold an observe-only controller over a lane's voltage prefix.

    Fast path: vectorized sensor delay/noise/threshold comparison and
    command counting, valid exactly when the plausibility monitor never
    fires and the sensor is the plain memoryless (zero-hysteresis)
    threshold comparator.  Anything else -- a fail-safe trip, a custom
    sensor -- replays the lane through the real controller state
    machine with a dummy machine, which is bit-exact by construction.
    """
    from repro.control.sensor import ThresholdSensor
    from repro.traces.replay import TraceMachine

    g = voltages.size
    sensor = controller.sensor
    vector_ok = (type(sensor) is ThresholdSensor and
                 sensor.hysteresis == 0.0)
    if vector_ok and g:
        idx = np.arange(g) - sensor.delay
        np.maximum(idx, 0, out=idx)
        observed = voltages[idx]
        if sensor.error > 0.0:
            observed = observed + _controller_noise(spec, g)
        low = observed < sensor.v_low
        high = observed > sensor.v_high
        levels = np.where(low, -1, np.where(high, 1, 0)).astype(np.int8)
        if (controller.monitor is None or
                not _monitor_would_trip(levels, observed,
                                        controller.monitor)):
            controller.reduce_cycles = int(np.count_nonzero(low))
            controller.boost_cycles = int(np.count_nonzero(high))
            prev = np.empty_like(levels)
            prev[0] = 0
            prev[1:] = levels[:-1]
            controller.transitions = int(np.count_nonzero(levels != prev))
            return
    elif vector_ok and not g:
        return
    dummy = TraceMachine()
    for k in range(g):
        controller.step(dummy, float(voltages[k]), float(currents[k]))
    controller.actuator.release(dummy)


def _fold_lane(spec, design, voltages, currents, trace, budget_message):
    """One lane's result dict, bit-identical to ``execute_spec``."""
    n = voltages.size
    if spec.watchdog_bounds is not None:
        watchdog = NumericWatchdog(v_min=spec.watchdog_bounds[0],
                                   v_max=spec.watchdog_bounds[1])
    else:
        watchdog = NumericWatchdog.for_nominal(NOMINAL_VOLTAGE)
    counter = EmergencyCounter(nominal=NOMINAL_VOLTAGE)
    trip = watchdog.first_violation(voltages) if n else None
    good = n if trip is None else trip

    cycle_time = trace.cycle_time
    energy = 0.0
    if good:
        energy = float(np.cumsum(np.concatenate(
            ([0.0], trace.powers[:good] * cycle_time)))[-1])

    controller = None
    if spec.delay is not None:
        thresholds = design.thresholds(delay=spec.delay, error=spec.error,
                                       actuator_kind=spec.actuator_kind)
        controller = _build_controller(thresholds, spec)
        _fold_controller(controller, spec, voltages[:good], currents)

    status, error = STATUS_OK, None
    if trip is not None:
        counter.observe_array(voltages[:good])
        try:
            watchdog.check_array(trace.c0 + 1, voltages)
            raise AssertionError("watchdog re-scan must raise")
        except SimulationDiverged as exc:
            status, error = STATUS_DIVERGED, str(exc)
        kept = good + 1
        cycles = trace.cycles0 + kept
        committed = trace.committed0 + int(trace.committed[:kept].sum())
    else:
        counter.observe_array(voltages)
        cycles = trace.cycles0 + n
        committed = trace.committed0 + int(trace.committed.sum())
        if budget_message is not None:
            status, error = STATUS_BUDGET, budget_message
    return {
        "status": status,
        "error": error,
        "cycles": cycles,
        "committed": committed,
        "ipc": committed / cycles if cycles else 0.0,
        "energy": energy,
        "emergencies": counter.summary(),
        "controller": (controller.summary()
                       if controller is not None else None),
    }


def replay_lanes(trace, specs, budget_message=None):
    """Replay one captured trace through every lane spec.

    Args:
        trace: a :class:`CapturedTrace`.
        specs: the lane :class:`JobSpec` list (all replay-eligible).
        budget_message: when the capture itself hit its wall-clock
            budget, the exception message every non-diverged lane
            reports as its ``"budget"`` status (a cut capture is never
            cached, so this never taints a memoized result).

    Returns:
        One result dict per lane, in spec order.
    """
    from repro.core import design_at

    designs = [design_at(spec.impedance_percent) for spec in specs]
    lanes = len(specs)
    coeffs = np.empty((8, lanes))
    x0 = np.empty(lanes)
    x1 = np.empty(lanes)
    for j, design in enumerate(designs):
        sim = _pdn_sim_for(design)
        i_min, _ = design.power_model.current_envelope()
        sim.reset(initial_current=i_min)
        lane_coeffs, lane_x0, lane_x1 = sim.lane_state()
        coeffs[:, j] = lane_coeffs
        x0[j] = lane_x0
        x1[j] = lane_x1
    currents = trace.powers / NOMINAL_VOLTAGE
    volts, _, _ = zoh_recurrence_lanes(tuple(coeffs), x0, x1, currents)
    return [_fold_lane(spec, designs[j], volts[:, j], currents, trace,
                       budget_message)
            for j, spec in enumerate(specs)]


def execute_replay_group(payload, timeout_seconds=None, trace_cache=None):
    """Capture (or fetch) one trace and replay every lane of a group.

    Args:
        payload: a :class:`ReplayGroup` or its canonical dict.
        timeout_seconds: wall-clock budget for the *capture* (the
            replay folds are array ops, far below any sane budget).
        trace_cache: a :class:`CurrentTraceCache` override (tests);
            defaults to the per-process env-derived cache.

    Returns:
        ``{"kind": "__replay_group__", "results": [...], "capture":
        "hit"|"miss", "lanes": N}`` with one ``execute_spec``-shaped
        result per lane, in group order.  A failed capture-cache store
        (degrade domain: the lanes replay from memory regardless) adds
        ``"capture_write_error": True`` so the parent can count it.
    """
    group = (payload if isinstance(payload, ReplayGroup)
             else ReplayGroup.from_dict(payload))
    specs = group.specs
    meta = capture_meta(specs[0])
    key = capture_key(specs[0])
    cache = trace_cache if trace_cache is not None else _capture_cache()
    trace = cache.get(key, meta)
    capture_state = "hit"
    budget_message = None
    write_errors_before = cache.write_errors
    if trace is None:
        capture_state = "miss"
        budget = (RunBudget(max_seconds=timeout_seconds)
                  if timeout_seconds is not None else None)
        trace, budget_exc = capture_trace(specs[0], budget=budget)
        if budget_exc is None:
            cache.put(key, meta, trace)
        else:
            budget_message = str(budget_exc)
    results = replay_lanes(trace, specs, budget_message=budget_message)
    out = {"kind": REPLAY_GROUP_KIND, "results": results,
           "capture": capture_state, "lanes": len(specs)}
    if cache.write_errors > write_errors_before:
        out["capture_write_error"] = True
    return out
