"""Declarative job specifications with stable content hashes.

A :class:`JobSpec` names one independent, deterministic cell of an
experiment grid -- everything a worker needs to reproduce the run from
scratch: the workload, the run length, the seed, the package point, the
controller knobs, and an optional injected fault.  Two spec objects
that describe the same experiment hash identically no matter how they
were constructed (keyword order, dict key order, int-vs-float literals),
which is what makes the on-disk result cache content-addressed.

Three job kinds exist:

* ``"run"`` -- a closed-loop simulation (the common case);
* ``"thresholds"`` -- a design-time threshold solve (Table 3 cells),
  which has no workload, seed, or cycle count; those fields are
  normalized to fixed values so irrelevant knobs never split the hash;
* ``"trace"`` -- a replay of an imported power trace, whose
  ``workload`` is the trace's 64-hex *content hash* (never its mutable
  name), so the job hash keys on trace content and two imports of the
  same file share every cached result.
"""

import hashlib
import json
import math
import re

from repro.control.actuators import ACTUATOR_KINDS
from repro.faults.campaign import FAULT_LIBRARY

#: Job kinds understood by the worker.
KIND_RUN = "run"
KIND_THRESHOLDS = "thresholds"
KIND_TRACE = "trace"

_TRACE_HASH = re.compile(r"^[0-9a-f]{64}$")

#: Canonical field order (also the canonical-dict key set).
_FIELDS = ("kind", "workload", "cycles", "warmup_instructions", "seed",
           "impedance_percent", "delay", "error", "actuator_kind",
           "fault", "fault_start", "stuck_cycles", "watchdog_bounds")

#: Warm-up applied when the caller does not choose one.
DEFAULT_WARMUP = 60000
STRESSMARK_WARMUP = 2000


def _require_int(name, value, minimum=None):
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError("%s must be an int, got %r" % (name, value))
    if minimum is not None and value < minimum:
        raise ValueError("%s must be >= %d, got %d" % (name, minimum, value))
    return value


def _require_float(name, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError("%s must be a number, got %r" % (name, value))
    value = float(value)
    if not math.isfinite(value):
        raise ValueError("%s must be finite, got %r" % (name, value))
    return value


class JobSpec:
    """One cell of an experiment grid (immutable once built).

    Args:
        workload: benchmark name or ``"stressmark"`` (``None`` only for
            ``kind="thresholds"`` jobs).
        cycles: timed cycles for the closed-loop region.
        warmup_instructions: functional fast-forward before the timed
            region; ``None`` picks 2000 for the stressmark and 60000
            otherwise (the repo-wide conventions).
        seed: master seed for the workload stream, sensor noise, and
            stochastic faults.
        impedance_percent: package quality, percent of target impedance.
        delay: sensor delay in cycles, or ``None`` for an uncontrolled
            (characterization) run.
        error: sensor error bound, volts.
        actuator_kind: one of :data:`~repro.control.actuators.ACTUATOR_KINDS`.
        fault: a name from :data:`~repro.faults.campaign.FAULT_LIBRARY`
            to inject, or ``None`` for a healthy run.
        fault_start: cycle at which the injected fault activates.
        stuck_cycles: plausibility-monitor stuck threshold for
            controlled runs.
        watchdog_bounds: ``(v_min, v_max)`` divergence bounds for the
            numeric watchdog, or ``None`` for the loop's default.
        kind: :data:`KIND_RUN`, :data:`KIND_THRESHOLDS`, or
            :data:`KIND_TRACE` (workload = trace content hash; warm-up
            defaults to a 0-cycle head skip; faults and watchdog
            bounds do not apply).
    """

    __slots__ = _FIELDS

    def __init__(self, workload=None, cycles=20000,
                 warmup_instructions=None, seed=0,
                 impedance_percent=200.0, delay=None, error=0.0,
                 actuator_kind="fu_dl1_il1", fault=None, fault_start=500,
                 stuck_cycles=500, watchdog_bounds=None, kind=KIND_RUN):
        if kind not in (KIND_RUN, KIND_THRESHOLDS, KIND_TRACE):
            raise ValueError("unknown job kind %r" % (kind,))
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "impedance_percent",
                           _require_float("impedance_percent",
                                          impedance_percent))
        object.__setattr__(self, "error", _require_float("error", error))
        if actuator_kind != "ideal" and actuator_kind not in ACTUATOR_KINDS:
            raise ValueError("unknown actuator kind %r (known: ideal, %s)"
                             % (actuator_kind,
                                ", ".join(sorted(ACTUATOR_KINDS))))
        object.__setattr__(self, "actuator_kind", str(actuator_kind))

        if kind == KIND_THRESHOLDS:
            if delay is None:
                raise ValueError("thresholds jobs need a sensor delay")
            object.__setattr__(self, "delay",
                               _require_int("delay", delay, minimum=0))
            # Normalize run-only knobs so they never split the hash.
            object.__setattr__(self, "workload", None)
            object.__setattr__(self, "cycles", 0)
            object.__setattr__(self, "warmup_instructions", 0)
            object.__setattr__(self, "seed", 0)
            object.__setattr__(self, "fault", None)
            object.__setattr__(self, "fault_start", 0)
            object.__setattr__(self, "stuck_cycles", 0)
            object.__setattr__(self, "watchdog_bounds", None)
            return

        if not workload or not isinstance(workload, str):
            raise ValueError("run jobs need a workload name, got %r"
                             % (workload,))
        if kind == KIND_TRACE:
            if not _TRACE_HASH.match(workload):
                raise ValueError("trace jobs take the trace's 64-hex "
                                 "content hash as workload, got %r"
                                 % (workload,))
            if fault is not None:
                raise ValueError("trace jobs cannot inject machine "
                                 "faults (a trace has no pipeline)")
            # A trace replay never diverges numerically the way the
            # uarch loop can; the watchdog knob does not apply.
            watchdog_bounds = None
        if delay is None:
            # Uncontrolled runs have no sensor or actuator: pin the
            # controller-only knobs to their defaults so irrelevant
            # settings never split the content hash.
            error = 0.0
            actuator_kind = "fu_dl1_il1"
            fault_start = 500
            stuck_cycles = 500
            object.__setattr__(self, "error", 0.0)
            object.__setattr__(self, "actuator_kind", "fu_dl1_il1")
        object.__setattr__(self, "workload", workload)
        object.__setattr__(self, "cycles",
                           _require_int("cycles", cycles, minimum=1))
        if warmup_instructions is None:
            if kind == KIND_TRACE:
                # Imported traces arrive pre-warmed by their exporter;
                # warm-up is an explicit head skip in cycles.
                warmup_instructions = 0
            else:
                warmup_instructions = (STRESSMARK_WARMUP
                                       if workload == "stressmark"
                                       else DEFAULT_WARMUP)
        object.__setattr__(self, "warmup_instructions",
                           _require_int("warmup_instructions",
                                        warmup_instructions, minimum=0))
        object.__setattr__(self, "seed", _require_int("seed", seed))
        if delay is not None:
            delay = _require_int("delay", delay, minimum=0)
        object.__setattr__(self, "delay", delay)
        if fault is not None:
            if fault not in FAULT_LIBRARY:
                raise ValueError("unknown fault %r (known: %s)"
                                 % (fault,
                                    ", ".join(sorted(FAULT_LIBRARY))))
            if delay is None:
                raise ValueError("fault injection needs a controlled "
                                 "loop (set delay)")
        object.__setattr__(self, "fault", fault)
        object.__setattr__(self, "fault_start",
                           _require_int("fault_start", fault_start,
                                        minimum=0))
        object.__setattr__(self, "stuck_cycles",
                           _require_int("stuck_cycles", stuck_cycles,
                                        minimum=1))
        if watchdog_bounds is not None:
            v_min, v_max = watchdog_bounds
            v_min = _require_float("watchdog v_min", v_min)
            v_max = _require_float("watchdog v_max", v_max)
            if not v_min < v_max:
                raise ValueError("watchdog bounds must satisfy "
                                 "v_min < v_max")
            watchdog_bounds = (v_min, v_max)
        object.__setattr__(self, "watchdog_bounds", watchdog_bounds)

    def __setattr__(self, name, value):
        raise AttributeError("JobSpec is immutable")

    @classmethod
    def thresholds(cls, impedance_percent=200.0, delay=2, error=0.0,
                   actuator_kind="ideal"):
        """A design-time threshold-solve job (one Table 3 cell)."""
        return cls(kind=KIND_THRESHOLDS, impedance_percent=impedance_percent,
                   delay=delay, error=error, actuator_kind=actuator_kind)

    def to_dict(self):
        """The canonical dict form (JSON-safe, fixed key set)."""
        d = {}
        for field in _FIELDS:
            value = getattr(self, field)
            if field == "watchdog_bounds" and value is not None:
                value = list(value)
            d[field] = value
        return d

    @classmethod
    def from_dict(cls, data):
        """Rebuild a spec from (any ordering of) its canonical dict."""
        data = dict(data)
        unknown = sorted(set(data) - set(_FIELDS))
        if unknown:
            raise ValueError("unknown JobSpec fields: %s" % unknown)
        kwargs = {k: data[k] for k in _FIELDS if k in data}
        bounds = kwargs.get("watchdog_bounds")
        if bounds is not None:
            kwargs["watchdog_bounds"] = tuple(bounds)
        if kwargs.get("kind", KIND_RUN) == KIND_THRESHOLDS:
            kwargs = {k: kwargs[k]
                      for k in ("kind", "impedance_percent", "delay",
                                "error", "actuator_kind") if k in kwargs}
        elif kwargs.get("warmup_instructions") is None:
            kwargs.pop("warmup_instructions", None)
        return cls(**kwargs)

    def canonical_json(self):
        """Byte-stable JSON encoding of the canonical dict."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self):
        """Stable hex digest identifying this experiment cell."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    def short_hash(self):
        """First 12 hex digits of :meth:`content_hash` -- the form
        used in journal progress lines and chaos spec triggers."""
        return self.content_hash()[:12]

    def label(self):
        """Short human-readable tag for progress lines."""
        if self.kind == KIND_THRESHOLDS:
            return ("thresholds@%g%% delay=%d %s"
                    % (self.impedance_percent, self.delay,
                       self.actuator_kind))
        ctrl = ("uncontrolled" if self.delay is None
                else "%s:%d" % (self.actuator_kind, self.delay))
        name = ("trace:%s" % self.workload[:12]
                if self.kind == KIND_TRACE else self.workload)
        tag = "%s@%g%% %s" % (name, self.impedance_percent, ctrl)
        if self.fault:
            tag += " fault=%s" % self.fault
        return tag

    def __eq__(self, other):
        if not isinstance(other, JobSpec):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.content_hash())

    def __repr__(self):
        return "JobSpec(%s)" % self.label()
