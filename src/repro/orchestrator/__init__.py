"""Parallel experiment orchestration with content-addressed caching.

Every evaluation in this repo -- bench tables, fault campaigns, tuning
sweeps -- decomposes into independent, deterministic cells.  This
package runs such cells as first-class jobs:

* :class:`~repro.orchestrator.spec.JobSpec` -- a declarative,
  content-hashed description of one cell;
* :class:`~repro.orchestrator.cache.ResultCache` -- disk memoization
  of finished cells, keyed by spec hash + code-version salt;
* :class:`~repro.orchestrator.runner.Runner` -- cache-aware execution
  across a ``multiprocessing`` pool with bounded retries, structured
  error capture, and deterministic merge order.

A sweep in four lines::

    from repro.orchestrator import JobSpec, ResultCache, Runner
    specs = [JobSpec(workload=w, impedance_percent=p, seed=11)
             for w in ("swim", "mgrid") for p in (100, 200)]
    outcomes = Runner(cache=ResultCache()).run(specs)

Environment knobs: ``REPRO_JOBS`` (worker count), ``REPRO_CACHE_DIR``
(cache location).  The ``repro-didt sweep`` CLI subcommand fronts this
package for grid runs.
"""

from repro.orchestrator.cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    default_cache_root,
    default_salt,
)
from repro.orchestrator.runner import (
    JobOutcome,
    Runner,
    default_jobs,
    merged_report,
    report_json,
)
from repro.orchestrator.spec import (
    KIND_RUN,
    KIND_THRESHOLDS,
    JobSpec,
)
from repro.orchestrator.worker import (
    STATUS_BUDGET,
    STATUS_DIVERGED,
    STATUS_ERROR,
    STATUS_OK,
    execute_spec,
)

__all__ = [
    "JobSpec",
    "KIND_RUN",
    "KIND_THRESHOLDS",
    "ResultCache",
    "CACHEABLE_STATUSES",
    "default_cache_root",
    "default_salt",
    "Runner",
    "JobOutcome",
    "default_jobs",
    "merged_report",
    "report_json",
    "execute_spec",
    "STATUS_OK",
    "STATUS_DIVERGED",
    "STATUS_BUDGET",
    "STATUS_ERROR",
]
