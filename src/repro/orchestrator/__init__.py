"""Parallel experiment orchestration with content-addressed caching.

Every evaluation in this repo -- bench tables, fault campaigns, tuning
sweeps -- decomposes into independent, deterministic cells.  This
package runs such cells as first-class jobs:

* :class:`~repro.orchestrator.spec.JobSpec` -- a declarative,
  content-hashed description of one cell;
* :class:`~repro.orchestrator.cache.ResultCache` -- disk memoization
  of finished cells, keyed by spec hash + code-version salt;
* :class:`~repro.orchestrator.runner.Runner` -- cache-aware execution
  across a ``multiprocessing`` pool with bounded retries, structured
  error capture, and deterministic merge order.

A sweep in four lines::

    from repro.orchestrator import JobSpec, ResultCache, Runner
    specs = [JobSpec(workload=w, impedance_percent=p, seed=11)
             for w in ("swim", "mgrid") for p in (100, 200)]
    outcomes = Runner(cache=ResultCache()).run(specs)

Crash tolerance: the runner fans out over a
:class:`~repro.orchestrator.supervise.SupervisedPool` that detects
worker death and hangs, requeues the in-flight jobs, restarts workers
with seeded exponential backoff, and isolates poison specs into
structured ``crashed`` outcomes.  Pair it with a
:class:`~repro.orchestrator.journal.SweepJournal` (an fsync'd,
checksummed JSONL write-ahead log) and an interrupted or killed sweep
is resumable: :func:`~repro.orchestrator.journal.replay_journal`
reconstructs the grid and the finished cells, and ``repro-didt sweep
--resume`` finishes the remainder byte-identically.

Environment knobs: ``REPRO_JOBS`` (worker count), ``REPRO_CACHE_DIR``
(cache location), ``REPRO_CHAOS``/``REPRO_CHAOS_ONCE`` (worker chaos
injection, see :mod:`repro.faults.chaos`).  The ``repro-didt sweep``
CLI subcommand fronts this package for grid runs.
"""

from repro.orchestrator.cache import (
    CACHEABLE_STATUSES,
    ResultCache,
    default_cache_root,
    default_salt,
    result_checksum,
)
from repro.orchestrator.journal import (
    JournalError,
    JournalState,
    JournalWriteError,
    SweepJournal,
    compact_journal,
    compacted_records,
    replay_journal,
)
from repro.orchestrator.grid import (
    DEFAULT_WORKLOADS,
    build_grid,
    canonical_workloads,
    parse_controller,
)
from repro.orchestrator.runner import (
    JobOutcome,
    Runner,
    SweepInterrupted,
    default_jobs,
    merged_report,
    report_json,
    suite_aggregates,
)
from repro.orchestrator.spec import (
    KIND_RUN,
    KIND_THRESHOLDS,
    KIND_TRACE,
    JobSpec,
)
from repro.orchestrator.replay import (
    ReplayGroup,
    capture_key,
    execute_replay_group,
    replay_eligible,
)
from repro.orchestrator.supervise import (
    BackoffPolicy,
    SupervisedPool,
)
from repro.orchestrator.tracecache import (
    CapturedTrace,
    CurrentTraceCache,
)
from repro.orchestrator.worker import (
    STATUS_BUDGET,
    STATUS_CRASHED,
    STATUS_DIVERGED,
    STATUS_ERROR,
    STATUS_OK,
    crashed_result,
    error_result,
    execute_payload,
    execute_spec,
)

__all__ = [
    "JobSpec",
    "KIND_RUN",
    "KIND_THRESHOLDS",
    "KIND_TRACE",
    "DEFAULT_WORKLOADS",
    "build_grid",
    "canonical_workloads",
    "parse_controller",
    "suite_aggregates",
    "ResultCache",
    "CACHEABLE_STATUSES",
    "default_cache_root",
    "default_salt",
    "result_checksum",
    "SweepJournal",
    "JournalState",
    "JournalError",
    "JournalWriteError",
    "replay_journal",
    "compact_journal",
    "compacted_records",
    "Runner",
    "JobOutcome",
    "SweepInterrupted",
    "default_jobs",
    "merged_report",
    "report_json",
    "SupervisedPool",
    "BackoffPolicy",
    "ReplayGroup",
    "replay_eligible",
    "capture_key",
    "execute_replay_group",
    "CapturedTrace",
    "CurrentTraceCache",
    "execute_payload",
    "execute_spec",
    "error_result",
    "crashed_result",
    "STATUS_OK",
    "STATUS_DIVERGED",
    "STATUS_BUDGET",
    "STATUS_ERROR",
    "STATUS_CRASHED",
]
