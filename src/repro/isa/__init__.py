"""Alpha-flavoured instruction-set substrate.

The paper's experiments run Alpha binaries on SimpleScalar; its dI/dt
stressmark (Figure 8) is a hand-written Alpha loop.  This package
provides the minimal ISA machinery this reproduction needs:

* :mod:`repro.isa.opcodes` -- opcode table, instruction classes, and the
  default execution latencies used by the functional units.
* :mod:`repro.isa.instruction` -- static and dynamic instruction records.
  The simulator is *timing*-accurate, not value-accurate: a dynamic
  instruction carries its register dependences, memory address, and
  branch outcome, which is everything the pipeline, the caches, and the
  power model observe.
* :mod:`repro.isa.program` -- static programs and the sequencer that
  unrolls them into dynamic instruction streams.
* :mod:`repro.isa.assembler` -- a small two-pass assembler so workloads
  (notably the stressmark) can be written as actual assembly text.
"""

from repro.isa.opcodes import InstrClass, Opcode, OPCODES, default_latencies
from repro.isa.instruction import StaticInst, DynamicInst, Reg
from repro.isa.program import Program, Sequencer
from repro.isa.assembler import assemble, AssemblerError

__all__ = [
    "InstrClass",
    "Opcode",
    "OPCODES",
    "default_latencies",
    "StaticInst",
    "DynamicInst",
    "Reg",
    "Program",
    "Sequencer",
    "assemble",
    "AssemblerError",
]
