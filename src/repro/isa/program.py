"""Static programs and the sequencer that unrolls them.

A :class:`Program` is an assembled list of static instructions plus the
labels that name positions in it.  A :class:`Sequencer` walks a program in
architectural order, resolving branch outcomes and effective addresses,
and yields the :class:`~repro.isa.instruction.DynamicInst` stream the
cycle simulator consumes.

The sequencer is deliberately value-free: conditional branch outcomes
come from a pluggable policy (default: backward taken / forward not
taken, i.e. loops loop), and memory addresses come from per-register base
values plus displacements.  For the workloads in this reproduction --
above all the stressmark, whose loop touches one buffer through one base
register -- that is an exact model.
"""

from repro.isa.instruction import DynamicInst, StaticInst

#: Default code base address.
DEFAULT_BASE_PC = 0x12000

#: Default data base for register ``rN``: distinct, cache-line-aligned.
def _default_reg_base(reg):
    return 0x100000 + reg * 0x10000


class Program:
    """An assembled static program.

    Attributes:
        instructions: tuple of :class:`StaticInst`, with resolved branch
            target indices.
        labels: mapping of label name -> static instruction index.
        base_pc: address of instruction 0; instruction *i* sits at
            ``base_pc + 4 i``.
    """

    def __init__(self, instructions, labels=None, base_pc=DEFAULT_BASE_PC):
        self.instructions = tuple(instructions)
        self.labels = dict(labels or {})
        self.base_pc = base_pc
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, StaticInst):
                raise TypeError("instruction %d is not a StaticInst: %r"
                                % (i, inst))
            inst.index = i
            if inst.target_label is not None and inst.target_index is None:
                try:
                    inst.target_index = self.labels[inst.target_label]
                except KeyError:
                    raise ValueError("undefined label %r in instruction %d"
                                     % (inst.target_label, i)) from None

    def __len__(self):
        return len(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    def pc_of(self, index):
        """Address of static instruction ``index``."""
        return self.base_pc + 4 * index

    def index_of_pc(self, pc):
        """Static index of the instruction at ``pc``."""
        offset = pc - self.base_pc
        if offset % 4 != 0 or not 0 <= offset // 4 < len(self.instructions):
            raise ValueError("pc %#x is not in this program" % pc)
        return offset // 4


def backward_taken_policy(static_inst, execution_count):
    """Default conditional-branch policy: backward taken, forward not.

    Loops written with a backward conditional branch iterate forever (the
    sequencer's ``max_instructions`` bounds the run), and forward guards
    fall through -- the common shape of hot loops.
    """
    return static_inst.target_index is not None and \
        static_inst.target_index <= static_inst.index


def loop_count_policy(n_iterations):
    """Branch policy that lets each backward branch loop ``n`` times.

    Returns a policy function that takes a backward branch the first
    ``n_iterations - 1`` times it executes and falls through afterwards,
    turning an infinite assembly loop into a bounded run.
    """
    def policy(static_inst, execution_count):
        if static_inst.target_index is None or \
                static_inst.target_index > static_inst.index:
            return False
        return (execution_count % n_iterations) != n_iterations - 1
    return policy


class Sequencer:
    """Unrolls a :class:`Program` into a dynamic instruction stream.

    Args:
        program: the program to execute.
        branch_policy: ``f(static_inst, execution_count) -> bool`` giving
            the outcome of each conditional branch execution.  Defaults to
            :func:`backward_taken_policy`.
        reg_bases: mapping of register index -> base byte address used to
            compute effective addresses; unknown registers get distinct
            defaults so different base registers touch different lines.
        max_instructions: hard cap on the dynamic stream length (infinite
            loops are the normal case for the stressmark).
        start_label: label to begin execution at (default: instruction 0).
    """

    def __init__(self, program, branch_policy=None, reg_bases=None,
                 max_instructions=None, start_label=None):
        self.program = program
        self.branch_policy = branch_policy or backward_taken_policy
        self.reg_bases = dict(reg_bases or {})
        self.max_instructions = max_instructions
        if start_label is not None:
            self.start_index = program.labels[start_label]
        else:
            self.start_index = 0
        self._exec_counts = [0] * len(program)

    def _address(self, inst):
        base = self.reg_bases.get(inst.base)
        if base is None:
            base = _default_reg_base(inst.base)
        return base + inst.displacement

    def __iter__(self):
        """Yield :class:`DynamicInst` in architectural execution order."""
        program = self.program
        if len(program) == 0:
            return
        index = self.start_index
        seq = 0
        call_stack = []
        limit = self.max_instructions
        while 0 <= index < len(program):
            if limit is not None and seq >= limit:
                return
            static = program[index]
            op = static.op
            taken = False
            target_pc = None
            next_index = index + 1
            if op.iclass.is_control:
                if op.is_return:
                    taken = True
                    next_index = call_stack.pop() if call_stack else len(program)
                    target_pc = program.base_pc + 4 * next_index
                elif op.is_call:
                    taken = True
                    call_stack.append(index + 1)
                    next_index = static.target_index
                    target_pc = program.pc_of(next_index)
                elif op.is_conditional:
                    taken = self.branch_policy(static, self._exec_counts[index])
                    if taken:
                        next_index = static.target_index
                        target_pc = program.pc_of(next_index)
                else:  # unconditional br/jmp
                    taken = True
                    next_index = static.target_index
                    target_pc = program.pc_of(next_index)
            addr = self._address(static) if op.iclass.is_memory else None
            yield DynamicInst(
                seq=seq,
                pc=program.pc_of(index),
                op=op,
                dest=static.dest,
                srcs=static.srcs + ((static.base,) if static.base is not None
                                    and not _is_zero(static.base) else ()),
                addr=addr,
                taken=taken,
                target=target_pc,
            )
            self._exec_counts[index] += 1
            seq += 1
            index = next_index

    def run(self, n):
        """Materialize the first ``n`` dynamic instructions as a list."""
        out = []
        for inst in self:
            out.append(inst)
            if len(out) >= n:
                break
        return out


def _is_zero(reg):
    from repro.isa.instruction import Reg
    return Reg.is_zero(reg)
