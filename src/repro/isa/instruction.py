"""Static and dynamic instruction records.

Register namespace: architectural integer registers are 0..31 and
floating-point registers 32..63.  Following the Alpha convention, ``r31``
and ``f31`` read as zero and are never tracked as dependences.
"""

from repro.isa.opcodes import InstrClass, Opcode

#: Number of integer architectural registers.
N_INT_REGS = 32
#: Total architectural registers (integer + floating point).
N_REGS = 64
#: The integer zero register (Alpha r31).
ZERO_REG = 31
#: The floating-point zero register (Alpha f31).
FZERO_REG = 63


class Reg:
    """Helpers for the flat 0..63 register namespace."""

    @staticmethod
    def int_reg(n):
        """Architectural integer register ``rN``."""
        if not 0 <= n < N_INT_REGS:
            raise ValueError("integer register index out of range: %r" % n)
        return n

    @staticmethod
    def fp_reg(n):
        """Architectural floating-point register ``fN``."""
        if not 0 <= n < N_INT_REGS:
            raise ValueError("fp register index out of range: %r" % n)
        return N_INT_REGS + n

    @staticmethod
    def parse(text):
        """Parse ``"r7"`` / ``"f3"`` / ``"$7"`` / ``"$f3"`` to an index."""
        t = text.strip().lower().lstrip("$")
        if not t:
            raise ValueError("empty register name")
        if t[0] == "f":
            return Reg.fp_reg(int(t[1:]))
        if t[0] == "r":
            return Reg.int_reg(int(t[1:]))
        return Reg.int_reg(int(t))

    @staticmethod
    def name(index):
        """Inverse of :meth:`parse`."""
        if not 0 <= index < N_REGS:
            raise ValueError("register index out of range: %r" % index)
        if index < N_INT_REGS:
            return "r%d" % index
        return "f%d" % (index - N_INT_REGS)

    @staticmethod
    def is_zero(index):
        """Whether the register always reads as zero."""
        return index in (ZERO_REG, FZERO_REG)


class StaticInst:
    """One assembled instruction in a :class:`~repro.isa.program.Program`.

    Attributes:
        op: the :class:`~repro.isa.opcodes.Opcode`.
        dest: destination register index, or ``None``.
        srcs: tuple of source register indices (zero registers excluded).
        base: base register for memory operands, or ``None``.
        displacement: byte displacement for memory operands.
        target_label: label name for branch targets, resolved by the
            assembler into :attr:`target_index`.
        target_index: static index of the branch target instruction.
    """

    __slots__ = ("op", "dest", "srcs", "base", "displacement",
                 "target_label", "target_index", "index")

    def __init__(self, op, dest=None, srcs=(), base=None, displacement=0,
                 target_label=None, target_index=None, index=None):
        if not isinstance(op, Opcode):
            raise TypeError("op must be an Opcode, got %r" % (op,))
        self.op = op
        self.dest = dest
        self.srcs = tuple(s for s in srcs if not Reg.is_zero(s))
        self.base = base
        self.displacement = displacement
        self.target_label = target_label
        self.target_index = target_index
        self.index = index

    @property
    def iclass(self):
        """Execution class of the underlying opcode."""
        return self.op.iclass

    def __repr__(self):
        parts = [self.op.name]
        if self.dest is not None:
            parts.append(Reg.name(self.dest))
        parts.extend(Reg.name(s) for s in self.srcs)
        if self.base is not None:
            parts.append("%d(%s)" % (self.displacement, Reg.name(self.base)))
        if self.target_label is not None:
            parts.append(self.target_label)
        return "<StaticInst %s>" % " ".join(parts)


class DynamicInst:
    """One instruction instance flowing through the pipeline.

    This is the unit of work the cycle simulator consumes.  It carries
    exactly what timing and power simulation need -- dependences, the
    effective address of memory operations, and the resolved outcome of
    branches -- and no architectural values.

    Attributes:
        seq: global dynamic sequence number (program order).
        pc: instruction address (used by the branch predictor and I-cache).
        op: the :class:`~repro.isa.opcodes.Opcode`.
        dest: destination register index or ``None``.
        srcs: tuple of source register indices.
        addr: effective byte address for loads/stores, else ``None``.
        taken: resolved branch outcome (``False`` for non-branches).
        target: resolved next PC if taken (branches only).
    """

    __slots__ = ("seq", "pc", "op", "dest", "srcs", "addr", "taken", "target")

    def __init__(self, seq, pc, op, dest=None, srcs=(), addr=None,
                 taken=False, target=None):
        self.seq = seq
        self.pc = pc
        self.op = op
        self.dest = dest
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.target = target

    @property
    def iclass(self):
        return self.op.iclass

    @property
    def is_branch(self):
        """Whether this is a control-flow instruction."""
        return self.op.iclass is InstrClass.BRANCH

    @property
    def is_load(self):
        """Whether this is a load."""
        return self.op.iclass is InstrClass.LOAD

    @property
    def is_store(self):
        """Whether this is a store."""
        return self.op.iclass is InstrClass.STORE

    @property
    def is_mem(self):
        """Whether this is a memory operation (load or store)."""
        return self.op.iclass.is_memory

    @property
    def next_pc(self):
        """The PC the instruction actually falls through or jumps to."""
        if self.is_branch and self.taken:
            return self.target
        return self.pc + 4

    def __repr__(self):
        extra = ""
        if self.is_mem:
            extra = " addr=%#x" % self.addr
        if self.is_branch:
            extra = " taken=%s target=%s" % (self.taken, self.target)
        return "<DynamicInst #%d pc=%#x %s%s>" % (self.seq, self.pc,
                                                  self.op.name, extra)
