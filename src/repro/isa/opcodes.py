"""Opcode table, instruction classes, and execution latencies.

The opcode set is a pragmatic subset of the Alpha ISA -- enough to write
the paper's stressmark verbatim (``ldt``, ``divt``, ``stt``, ``ldq``,
``cmovne``, ``stq``, branches) and to synthesize SPEC-like instruction
mixes.  Each opcode maps to an :class:`InstrClass`, which is what the
pipeline's functional units and the power model key on.
"""

import enum
from dataclasses import dataclass


class InstrClass(enum.Enum):
    """Execution class of an instruction.

    These map onto Table 1's functional unit pools:  ``IALU`` onto the 8
    integer ALUs (conditional branches also resolve there), ``IMULT`` and
    ``IDIV`` onto the 2 integer multiply/divide units, ``FALU`` onto the 4
    FP adders, ``FMULT``/``FDIV`` onto the 2 FP multiply/divide units, and
    ``LOAD``/``STORE`` onto the 4 memory ports.
    """

    IALU = "ialu"
    IMULT = "imult"
    IDIV = "idiv"
    FALU = "falu"
    FMULT = "fmult"
    FDIV = "fdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self):
        """Whether the class is a memory operation."""
        return self in (InstrClass.LOAD, InstrClass.STORE)

    @property
    def is_floating_point(self):
        """Whether the class executes in the FP pipelines."""
        return self in (InstrClass.FALU, InstrClass.FMULT, InstrClass.FDIV)

    @property
    def is_control(self):
        """Whether the class is a branch."""
        return self is InstrClass.BRANCH


@dataclass(frozen=True)
class Opcode:
    """One table entry.

    Attributes:
        name: mnemonic, e.g. ``"divt"``.
        iclass: execution class.
        n_sources: number of register source operands the mnemonic takes
            (memory operands contribute their base register separately).
        writes_dest: whether the mnemonic produces a register result.
        is_conditional: for branches, whether the outcome depends on a
            register (``beq``/``bne``/... vs ``br``).
        is_call: subroutine call (pushes the return-address stack).
        is_return: subroutine return (pops the return-address stack).
    """

    name: str
    iclass: InstrClass
    n_sources: int = 2
    writes_dest: bool = True
    is_conditional: bool = False
    is_call: bool = False
    is_return: bool = False


def _op(name, iclass, **kwargs):
    return Opcode(name=name, iclass=iclass, **kwargs)


#: Mnemonic -> Opcode for every instruction this reproduction knows.
OPCODES = {op.name: op for op in (
    # Integer ALU.
    _op("addq", InstrClass.IALU),
    _op("subq", InstrClass.IALU),
    _op("and", InstrClass.IALU),
    _op("bis", InstrClass.IALU),       # Alpha's OR
    _op("xor", InstrClass.IALU),
    _op("sll", InstrClass.IALU),
    _op("srl", InstrClass.IALU),
    _op("cmpeq", InstrClass.IALU),
    _op("cmplt", InstrClass.IALU),
    _op("cmple", InstrClass.IALU),
    _op("cmovne", InstrClass.IALU),
    _op("cmoveq", InstrClass.IALU),
    _op("lda", InstrClass.IALU, n_sources=1),
    _op("mov", InstrClass.IALU, n_sources=1),
    # Integer multiply / divide.
    _op("mulq", InstrClass.IMULT),
    _op("divq", InstrClass.IDIV),
    _op("remq", InstrClass.IDIV),
    # Floating point.
    _op("addt", InstrClass.FALU),
    _op("subt", InstrClass.FALU),
    _op("cmpteq", InstrClass.FALU),
    _op("cmptlt", InstrClass.FALU),
    _op("cvtqt", InstrClass.FALU, n_sources=1),
    _op("cvttq", InstrClass.FALU, n_sources=1),
    _op("mult", InstrClass.FMULT),
    _op("divt", InstrClass.FDIV),
    _op("sqrtt", InstrClass.FDIV, n_sources=1),
    # Memory.  Loads/stores take a displacement(base) memory operand.
    _op("ldq", InstrClass.LOAD, n_sources=0),
    _op("ldl", InstrClass.LOAD, n_sources=0),
    _op("ldt", InstrClass.LOAD, n_sources=0),
    _op("lds", InstrClass.LOAD, n_sources=0),
    _op("stq", InstrClass.STORE, n_sources=1, writes_dest=False),
    _op("stl", InstrClass.STORE, n_sources=1, writes_dest=False),
    _op("stt", InstrClass.STORE, n_sources=1, writes_dest=False),
    _op("sts", InstrClass.STORE, n_sources=1, writes_dest=False),
    # Control.
    _op("br", InstrClass.BRANCH, n_sources=0, writes_dest=False),
    _op("beq", InstrClass.BRANCH, n_sources=1, writes_dest=False,
        is_conditional=True),
    _op("bne", InstrClass.BRANCH, n_sources=1, writes_dest=False,
        is_conditional=True),
    _op("blt", InstrClass.BRANCH, n_sources=1, writes_dest=False,
        is_conditional=True),
    _op("bge", InstrClass.BRANCH, n_sources=1, writes_dest=False,
        is_conditional=True),
    _op("jsr", InstrClass.BRANCH, n_sources=0, writes_dest=True, is_call=True),
    _op("ret", InstrClass.BRANCH, n_sources=1, writes_dest=False,
        is_return=True),
    # No-op.
    _op("nop", InstrClass.NOP, n_sources=0, writes_dest=False),
)}


#: Execution latency (cycles in the functional unit) per class.  Values
#: follow SimpleScalar's defaults for an aggressive core; the FP divide's
#: long latency is what opens the stressmark's low-current trough.
DEFAULT_LATENCY = {
    InstrClass.IALU: 1,
    InstrClass.IMULT: 3,
    InstrClass.IDIV: 20,
    InstrClass.FALU: 2,
    InstrClass.FMULT: 4,
    InstrClass.FDIV: 16,
    InstrClass.LOAD: 1,   # address generation; cache latency is added on top
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.NOP: 1,
}

#: Issue-to-issue interval per class: 1 for fully pipelined units, equal
#: to the latency for unpipelined ones (divides).
DEFAULT_INTERVAL = {
    InstrClass.IALU: 1,
    InstrClass.IMULT: 1,
    InstrClass.IDIV: 20,
    InstrClass.FALU: 1,
    InstrClass.FMULT: 1,
    InstrClass.FDIV: 16,
    InstrClass.LOAD: 1,
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.NOP: 1,
}


def default_latencies():
    """A fresh copy of the class -> latency map (safe to mutate)."""
    return dict(DEFAULT_LATENCY)


def default_intervals():
    """A fresh copy of the class -> issue interval map (safe to mutate)."""
    return dict(DEFAULT_INTERVAL)
