"""A small two-pass assembler for the Alpha-flavoured subset.

Accepts the syntax the paper's Figure 8 uses, e.g.::

    loop:
        ldt   f1, 0(r4)
        divt  f3, f1, f2      # f3 <- f1 / f2
        divt  f3, f3, f2
        stt   f3, 8(r4)
        ldq   r7, 8(r4)
        cmovne r3, r31, r7
        stq   r3, 0(r4)
        br    loop

Registers may be written ``r7``/``f3`` or Alpha-style ``$7``/``$f3``.
Comments run from ``#`` or ``;`` to end of line.  Operand order is
destination first.  Memory operands are ``displacement(base)``.
"""

import re

from repro.isa.instruction import Reg, StaticInst
from repro.isa.opcodes import OPCODES, InstrClass
from repro.isa.program import DEFAULT_BASE_PC, Program


class AssemblerError(ValueError):
    """Raised for any syntax or semantic error, with a line number."""

    def __init__(self, line_no, message):
        super().__init__("line %d: %s" % (line_no, message))
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_MEM_RE = re.compile(r"^(-?\d+)?\(([^)]+)\)$")
_LABEL_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def assemble(text, base_pc=DEFAULT_BASE_PC):
    """Assemble ``text`` into a :class:`~repro.isa.program.Program`.

    Args:
        text: assembly source.
        base_pc: address of the first instruction.

    Returns:
        A :class:`Program` with branch targets resolved.

    Raises:
        AssemblerError: on unknown mnemonics, malformed operands,
            duplicate labels, or (via Program) undefined branch targets.
    """
    instructions = []
    labels = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label, line = match.group(1), match.group(2).strip()
            if label in labels:
                raise AssemblerError(line_no, "duplicate label %r" % label)
            labels[label] = len(instructions)
            if not line:
                continue
        instructions.append(_parse_instruction(line, line_no))
    return Program(instructions, labels=labels, base_pc=base_pc)


def _parse_instruction(line, line_no):
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    op = OPCODES.get(mnemonic)
    if op is None:
        raise AssemblerError(line_no, "unknown mnemonic %r" % mnemonic)
    operands = []
    if len(parts) > 1:
        operands = [o.strip() for o in parts[1].split(",")]
        operands = [o for o in operands if o]

    try:
        return _build(op, operands, line_no)
    except AssemblerError:
        raise
    except (ValueError, IndexError) as exc:
        raise AssemblerError(line_no, str(exc)) from exc


def _build(op, operands, line_no):
    iclass = op.iclass
    if iclass is InstrClass.NOP:
        _expect(operands, 0, op, line_no)
        return StaticInst(op)

    if iclass is InstrClass.LOAD:
        _expect(operands, 2, op, line_no)
        dest = Reg.parse(operands[0])
        disp, base = _parse_mem(operands[1], line_no)
        return StaticInst(op, dest=dest, base=base, displacement=disp)

    if iclass is InstrClass.STORE:
        _expect(operands, 2, op, line_no)
        src = Reg.parse(operands[0])
        disp, base = _parse_mem(operands[1], line_no)
        return StaticInst(op, srcs=(src,), base=base, displacement=disp)

    if iclass is InstrClass.BRANCH:
        if op.is_return:
            # ret [ra]
            srcs = (Reg.parse(operands[0]),) if operands else (Reg.int_reg(26),)
            return StaticInst(op, srcs=srcs)
        if op.is_call:
            # jsr label  |  jsr ra, label
            if len(operands) == 1:
                dest, label = Reg.int_reg(26), operands[0]
            else:
                _expect(operands, 2, op, line_no)
                dest, label = Reg.parse(operands[0]), operands[1]
            _check_label(label, line_no)
            return StaticInst(op, dest=dest, target_label=label)
        if op.is_conditional:
            _expect(operands, 2, op, line_no)
            src = Reg.parse(operands[0])
            _check_label(operands[1], line_no)
            return StaticInst(op, srcs=(src,), target_label=operands[1])
        _expect(operands, 1, op, line_no)
        _check_label(operands[0], line_no)
        return StaticInst(op, target_label=operands[0])

    # Register-to-register ALU/FP forms: dest, src1[, src2...]
    expected = 1 + op.n_sources if op.writes_dest else op.n_sources
    _expect(operands, expected, op, line_no)
    if op.writes_dest:
        dest = Reg.parse(operands[0])
        srcs = tuple(Reg.parse(o) for o in operands[1:])
    else:
        dest = None
        srcs = tuple(Reg.parse(o) for o in operands)
    return StaticInst(op, dest=dest, srcs=srcs)


def _expect(operands, n, op, line_no):
    if len(operands) != n:
        raise AssemblerError(line_no, "%s expects %d operand(s), got %d"
                             % (op.name, n, len(operands)))


def _parse_mem(text, line_no):
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AssemblerError(line_no, "malformed memory operand %r" % text)
    disp = int(match.group(1)) if match.group(1) else 0
    base = Reg.parse(match.group(2))
    return disp, base


def _check_label(label, line_no):
    if not _LABEL_NAME_RE.match(label):
        raise AssemblerError(line_no, "malformed label %r" % label)
