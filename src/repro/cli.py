"""Command-line interface.

Installed as ``repro-didt`` (see ``pyproject.toml``), or run as
``python -m repro.cli``.  Subcommands map onto the paper's workflow:

* ``analyze`` -- the design-time numbers: current envelope, target
  impedance, and the Table-3 threshold sweep.
* ``stressmark`` -- tune the dI/dt stressmark and report its damage.
* ``characterize BENCH [BENCH ...]`` -- per-benchmark voltage behaviour
  (Figure 10 / Table 2 style).
* ``control WORKLOAD`` -- one closed-loop run, controlled vs
  uncontrolled, with cost accounting.
* ``campaign`` -- the fault-injection campaign: sweep sensor/actuator
  faults across workloads and report resilience (emergencies missed,
  IPC lost, fail-safe activations).
* ``sweep`` -- an orchestrated grid (workloads x impedance levels x
  controllers) run through the parallel, cache-backed, crash-tolerant
  orchestrator; emits one merged byte-stable JSON report.
  ``REPRO_JOBS`` sets the worker count, ``REPRO_CACHE_DIR`` moves the
  result cache.  ``--journal PATH`` write-ahead-logs every job state
  transition; after a crash, kill, or Ctrl-C, ``sweep --resume PATH``
  replays the journal and finishes only the remainder.  Exit codes
  are load-bearing for CI: 0 all cells ok, 1 at least one cell ended
  ``diverged``/``budget``/``error``/``crashed``, 2 usage error, 3
  interrupted by SIGINT/SIGTERM (journal flushed, resumable).
* ``serve`` -- the sweep service daemon: a journal-backed job queue
  over HTTP.  Clients POST spec grids, the daemon executes them with
  the same supervised orchestrator as ``sweep``, results are polled
  by content hash with ``ETag``/304 caching.  Admitted work is
  journalled before it is acknowledged, so a killed server restarted
  on the same ``--journal`` resumes byte-identically.  SIGTERM drains
  gracefully and exits 3, like an interrupted sweep.
* ``submit`` -- the matching client: submit a grid to a running
  server, ride out restarts with deterministic seeded retry/backoff,
  and write the same merged byte-stable report ``sweep`` emits.
  Exits 4 when the server stays unreachable past the retry budget.
* ``poll`` -- check individual job hashes on a server (scripting).
* ``journal compact PATH`` -- rewrite a sweep journal down to its
  last-write-wins records (atomic; refuses if a live writer holds it).
* ``cache stats|clear`` -- inspect or empty the result cache;
  ``--captures`` targets the captured power-trace cache the replay
  sweeps keep alongside it.
* ``doctor`` -- offline scrub of every persistence surface (result
  cache, capture cache, warm-up cache, trace store, and any
  ``--journal`` paths): verify checksums/salts/schemas, list torn
  tails and orphaned temp files, and with ``--fix`` quarantine or
  reclaim them.  The report is byte-stable JSON; exit 0 clean (or
  fully repaired), 1 problems remain, 2 usage.
* ``trace`` (alias ``run``) -- one fully instrumented closed-loop run:
  cycle-stamped events to Chrome trace-event JSON (``--trace-out``,
  loadable in Perfetto / ``chrome://tracing``), byte-stable JSONL
  (``--jsonl-out``), and the metrics registry (``--metrics-out``).
* ``list`` -- available synthetic benchmarks.
"""

import argparse
import json
import os
import sys
import tempfile

from repro.analysis.distributions import VoltageDistribution
from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.core import (
    ACTUATOR_KINDS,
    VoltageControlDesign,
    get_profile,
    stressmark_stream,
    tune_stressmark,
)
from repro.faults.campaign import FAULT_LIBRARY, run_campaign
from repro.workloads.spec import SPEC2000

#: ``sweep`` exit codes (documented in the README exit-code table).
EXIT_OK = 0
EXIT_CELL_FAILURES = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 3
#: ``submit``/``poll``: the server stayed unreachable (or draining)
#: past the whole retry budget -- infrastructure, not cell results.
EXIT_UNAVAILABLE = 4

#: Cell statuses that make ``sweep`` exit non-zero: a CI grid must
#: fail loudly instead of shipping a green partial report.
FAILURE_STATUSES = ("budget", "crashed", "diverged", "error")


def _add_common(parser):
    parser.add_argument("--impedance", type=float, default=200.0,
                        help="package quality, %% of target impedance "
                             "(default 200)")
    parser.add_argument("--cycles", type=int, default=20000,
                        help="timed cycles per run (default 20000)")
    parser.add_argument("--seed", type=int, default=11,
                        help="workload seed (default 11)")


def build_parser():
    """Construct the argparse CLI (one sub-parser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro-didt",
        description="Microarchitectural dI/dt voltage control "
                    "(HPCA 2003 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="design-time analysis (Table 3)")
    _add_common(p)
    p.add_argument("--actuator", choices=sorted(ACTUATOR_KINDS),
                   default="ideal")
    p.add_argument("--max-delay", type=int, default=6)

    p = sub.add_parser("stressmark", help="tune and assess the stressmark")
    _add_common(p)

    p = sub.add_parser("characterize",
                       help="voltage behaviour of benchmarks")
    _add_common(p)
    p.add_argument("benchmarks", nargs="+", metavar="BENCH")

    p = sub.add_parser("control", help="closed-loop run with the controller")
    _add_common(p)
    p.add_argument("workload", help="benchmark name or 'stressmark'")
    p.add_argument("--delay", type=int, default=2, help="sensor delay")
    p.add_argument("--error", type=float, default=0.0,
                   help="sensor error, volts")
    p.add_argument("--actuator", choices=sorted(ACTUATOR_KINDS),
                   default="fu_dl1_il1")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write the controlled run's Chrome trace-event "
                        "JSON here")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the controlled run's metrics registry "
                        "JSON here")

    p = sub.add_parser("campaign",
                       help="fault-injection resilience campaign")
    _add_common(p)
    p.add_argument("workloads", nargs="*", default=None,
                   metavar="WORKLOAD",
                   help="benchmarks to sweep (default: swim, the "
                        "repo-wide default workload)")
    p.add_argument("--faults", nargs="+", choices=sorted(FAULT_LIBRARY),
                   default=None, metavar="FAULT",
                   help="fault types to inject (default: all)")
    p.add_argument("--delay", type=int, default=2, help="sensor delay")
    p.add_argument("--actuator", choices=sorted(ACTUATOR_KINDS),
                   default="fu_dl1_il1")
    p.add_argument("--fault-start", type=int, default=500,
                   help="cycle at which faults activate (default 500)")
    p.add_argument("--warmup", type=int, default=20000,
                   help="warm-up instructions per run (default 20000)")
    p.add_argument("--budget-seconds", type=float, default=120.0,
                   help="wall-clock cap per run (default 120)")
    p.add_argument("--json", metavar="PATH",
                   help="also write the machine-readable report "
                        "('-' for stdout)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or CPUs)")

    p = sub.add_parser("sweep",
                       help="orchestrated grid sweep with result caching")
    p.add_argument("--workloads", nargs="+", default=None,
                   metavar="WORKLOAD",
                   help="benchmark names, 'stressmark', or "
                        "'trace:NAME' for an imported trace (default: "
                        "swim, unless --suite or --resume supplies "
                        "the grid)")
    p.add_argument("--suite", nargs="+", default=None, metavar="SUITE",
                   help="named workload suites to expand into the "
                        "grid (built-ins like spec2000-all26 / "
                        "stressmark-family, or suites created with "
                        "'traces suite'); adds per-suite aggregate "
                        "tables to the report")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="trace store root (default: REPRO_TRACE_DIR "
                        "or ~/.local/share/repro-didt/traces)")
    p.add_argument("--impedances", nargs="+", type=float, default=[200.0],
                   metavar="PCT",
                   help="impedance levels, %% of target (default: 200)")
    p.add_argument("--controllers", nargs="+", default=["none"],
                   metavar="CTRL",
                   help="'none' (uncontrolled) or ACTUATOR[:DELAY[:ERROR]]"
                        ", e.g. fu_dl1_il1:2 (default: none)")
    p.add_argument("--cycles", type=int, default=20000,
                   help="timed cycles per cell (default 20000)")
    p.add_argument("--warmup", type=int, default=None,
                   help="warm-up instructions per cell (default: 2000 for "
                        "the stressmark, 60000 otherwise)")
    p.add_argument("--seed", type=int, default=11,
                   help="workload seed (default 11)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or CPUs)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock budget, seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="retries for transiently failing cells (default 1)")
    p.add_argument("--crash-retries", type=int, default=2,
                   help="retries for cells whose worker process dies; "
                        "one more death marks the cell 'crashed' "
                        "(default 2)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="write-ahead-log every job state transition to "
                        "this JSONL file (fsync'd; makes the sweep "
                        "resumable after a crash or kill)")
    p.add_argument("--resume", metavar="JOURNAL", default=None,
                   help="resume the sweep recorded in JOURNAL: replay "
                        "finished cells, run only the remainder, keep "
                        "journalling to the same file")
    p.add_argument("--no-cache", action="store_true",
                   help="run every cell; do not read or write the cache")
    p.add_argument("--no-replay", action="store_true",
                   help="lockstep every cell instead of replaying "
                        "captured current traces across impedance/"
                        "controller lanes (results are byte-identical "
                        "either way; this is the escape hatch)")
    p.add_argument("--no-speculate", action="store_true",
                   help="disable speculative chunked execution for "
                        "actuated cells (sets REPRO_NO_SPECULATE, "
                        "which pool workers inherit; results are "
                        "byte-identical either way)")
    p.add_argument("--invalidate", action="store_true",
                   help="drop this grid's cached cells, then run")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/repro-didt)")
    p.add_argument("--json", default="-", metavar="PATH",
                   help="merged report destination ('-' for stdout, "
                        "the default)")
    p.add_argument("--execution-detail", action="store_true",
                   help="include the per-job execution sidecar "
                        "(attempts, cached, wall time) in the report; "
                        "that section is not byte-stable")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the orchestrator's metrics registry "
                        "JSON here (cache hits/misses, retries, errors)")

    p = sub.add_parser("serve",
                       help="run the sweep service daemon")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (default 0: ephemeral; the bound "
                        "port is printed to stderr and written to "
                        "--port-file)")
    p.add_argument("--journal", required=True, metavar="PATH",
                   help="the write-ahead log backing the job queue "
                        "(created if missing, resumed if present; the "
                        "server holds its writer lock)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/repro-didt)")
    p.add_argument("--no-cache", action="store_true",
                   help="never serve or store cached results")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or CPUs)")
    p.add_argument("--queue-limit", type=int, default=1024,
                   help="max cells awaiting dispatch before submissions "
                        "shed with 429 (default 1024)")
    p.add_argument("--batch-limit", type=int, default=64,
                   help="max cells per runner batch (default 64)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock budget, seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="retries for transiently failing cells (default 1)")
    p.add_argument("--crash-retries", type=int, default=2,
                   help="retries for cells whose worker process dies "
                        "(default 2)")
    p.add_argument("--no-replay", action="store_true",
                   help="lockstep every cell instead of replaying "
                        "captured current traces (byte-identical "
                        "either way; matches sweep --no-replay)")
    p.add_argument("--no-speculate", action="store_true",
                   help="disable speculative chunked execution for "
                        "actuated cells (sets REPRO_NO_SPECULATE; "
                        "matches sweep --no-speculate)")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="per-connection socket timeout, seconds "
                        "(default 30)")
    p.add_argument("--port-file", metavar="PATH", default=None,
                   help="atomically write the bound port here (for "
                        "scripts wrapping an ephemeral --port 0)")

    p = sub.add_parser("submit",
                       help="submit a grid to a sweep server and wait")
    p.add_argument("--server", required=True, metavar="URL",
                   help="base URL of a running server, e.g. "
                        "http://127.0.0.1:8750")
    p.add_argument("--workloads", nargs="+", default=None,
                   metavar="WORKLOAD",
                   help="benchmark names, 'stressmark', or "
                        "'trace:NAME' (default: swim unless --suite "
                        "supplies the grid)")
    p.add_argument("--suite", nargs="+", default=None, metavar="SUITE",
                   help="named suites, expanded by the server at "
                        "admission; adds per-suite aggregate tables "
                        "to the report")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="trace store root for trace:NAME resolution "
                        "(default: REPRO_TRACE_DIR)")
    p.add_argument("--impedances", nargs="+", type=float, default=[200.0],
                   metavar="PCT",
                   help="impedance levels, %% of target (default: 200)")
    p.add_argument("--controllers", nargs="+", default=["none"],
                   metavar="CTRL",
                   help="'none' or ACTUATOR[:DELAY[:ERROR]] "
                        "(default: none)")
    p.add_argument("--cycles", type=int, default=20000,
                   help="timed cycles per cell (default 20000)")
    p.add_argument("--warmup", type=int, default=None,
                   help="warm-up instructions per cell")
    p.add_argument("--seed", type=int, default=11,
                   help="workload seed (default 11)")
    p.add_argument("--json", default="-", metavar="PATH",
                   help="merged report destination ('-' for stdout, "
                        "the default)")
    p.add_argument("--no-wait", action="store_true",
                   help="submit and print the admission receipt "
                        "without waiting for results")
    p.add_argument("--poll-seconds", type=float, default=0.5,
                   help="delay between poll rounds while waiting "
                        "(default 0.5)")
    p.add_argument("--retry-budget", type=int, default=8,
                   help="attempts per request before giving up with "
                        "exit 4 (default 8; backoff between attempts "
                        "is deterministic)")
    p.add_argument("--deadline", type=float, default=None,
                   help="give up waiting after this many seconds "
                        "(exit 4)")

    p = sub.add_parser("poll",
                       help="poll job hashes on a sweep server")
    p.add_argument("jobs", nargs="+", metavar="HASH",
                   help="job content hashes (from a submit receipt)")
    p.add_argument("--server", required=True, metavar="URL")
    p.add_argument("--retry-budget", type=int, default=8,
                   help="attempts per request before exit 4 (default 8)")

    p = sub.add_parser("journal", help="sweep-journal maintenance")
    p.add_argument("action", choices=["compact"],
                   help="compact: atomically rewrite the journal down "
                        "to its last-write-wins records")
    p.add_argument("path", metavar="JOURNAL", help="the journal file")

    p = sub.add_parser("cache", help="result-cache maintenance")
    p.add_argument("action", choices=["stats", "clear"],
                   help="stats: scan and summarize; clear: drop every "
                        "entry under the current code-version salt")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache root (default: REPRO_CACHE_DIR or "
                        "~/.cache/repro-didt)")
    p.add_argument("--no-verify", action="store_true",
                   help="stats: skip per-entry checksum verification "
                        "(fast count only)")
    p.add_argument("--captures", action="store_true",
                   help="operate on the captured power-trace cache "
                        "(replay sweeps) instead of the result cache")

    p = sub.add_parser("doctor",
                       help="offline scrub of every persistence "
                            "surface (caches, trace store, journals)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result/capture cache root (default: "
                        "REPRO_CACHE_DIR or ~/.cache/repro-didt)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="trace store root (default: REPRO_TRACE_DIR "
                        "or ~/.local/share/repro-didt/traces)")
    p.add_argument("--warm-dir", default=None, metavar="DIR",
                   help="warm-up checkpoint root (default: "
                        "REPRO_WARM_CACHE_DIR; unset skips the "
                        "section)")
    p.add_argument("--journal", action="append", default=[],
                   metavar="PATH", dest="journals",
                   help="also scrub this sweep journal (repeatable)")
    p.add_argument("--fix", action="store_true",
                   help="repair what the scrub finds: quarantine "
                        "invalid entries, remove orphaned temp files, "
                        "trim torn journal tails")
    p.add_argument("--json-out", metavar="PATH",
                   help="also write the byte-stable report JSON here")

    p = sub.add_parser("trace", aliases=["run"],
                       help="instrumented closed-loop run with trace/"
                            "metrics export")
    _add_common(p)
    p.add_argument("workload", nargs="?", default="stressmark",
                   help="benchmark name or 'stressmark' (the default)")
    p.add_argument("--delay", type=int, default=2, help="sensor delay")
    p.add_argument("--error", type=float, default=0.0,
                   help="sensor error, volts")
    p.add_argument("--actuator", choices=sorted(ACTUATOR_KINDS),
                   default="fu_dl1_il1")
    p.add_argument("--uncontrolled", action="store_true",
                   help="run without the controller (characterization)")
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the uncontrolled baseline track that is "
                        "otherwise traced alongside the controlled run")
    p.add_argument("--warmup", type=int, default=None,
                   help="warm-up instructions (default: 2000 for the "
                        "stressmark, 60000 otherwise)")
    p.add_argument("--capacity", type=int, default=65536,
                   help="trace ring-buffer capacity, events "
                        "(default 65536)")
    p.add_argument("--trace-out", metavar="PATH",
                   help="write Chrome trace-event JSON here (loadable "
                        "in Perfetto / chrome://tracing)")
    p.add_argument("--jsonl-out", metavar="PATH",
                   help="write the byte-stable JSONL event log here")
    p.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics registry JSON here")

    p = sub.add_parser("traces",
                       help="imported power-trace store (import, "
                            "validate, list, suites)")
    tsub = p.add_subparsers(dest="traces_command", required=True)

    def _trace_file_flags(tp):
        tp.add_argument("--units", choices=["A", "W"], default=None,
                        help="sample units where the file carries none "
                             "(NPY, headerless CSV): A current or W "
                             "power")
        tp.add_argument("--clock-hz", type=float, default=None,
                        help="sample clock where the file carries none "
                             "(default: the 3 GHz machine clock)")
        tp.add_argument("--format", choices=["csv", "npy", "jsonl"],
                        default=None,
                        help="trace format (default: by file "
                             "extension)")
        tp.add_argument("--name", default=None,
                        help="store label (default: the file's "
                             "basename stem)")
        tp.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="trace store root (default: "
                             "REPRO_TRACE_DIR or "
                             "~/.local/share/repro-didt/traces)")

    tp = tsub.add_parser("import",
                         help="validate a trace file and store it by "
                              "content hash")
    tp.add_argument("path", metavar="TRACE", help="CSV/NPY/JSONL file")
    _trace_file_flags(tp)

    tp = tsub.add_parser("validate",
                         help="strictly validate a trace file "
                              "(exit 0 valid, 1 invalid, 2 usage)")
    tp.add_argument("path", metavar="TRACE", help="CSV/NPY/JSONL file")
    _trace_file_flags(tp)

    tp = tsub.add_parser("list",
                         help="list stored traces and suites")
    tp.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="trace store root (default: REPRO_TRACE_DIR)")

    tp = tsub.add_parser("suite",
                         help="create an immutable named suite of "
                              "workloads and/or stored traces")
    tp.add_argument("name", metavar="NAME", help="suite name")
    tp.add_argument("members", nargs="+", metavar="MEMBER",
                    help="benchmark names, 'stressmark', or stored "
                         "traces (by name, hash, or 'trace:REF')")
    tp.add_argument("--trace-dir", default=None, metavar="DIR",
                    help="trace store root (default: REPRO_TRACE_DIR)")

    sub.add_parser("list", help="list synthetic benchmarks")
    return parser


def _design(args):
    return VoltageControlDesign(impedance_percent=args.impedance)


def _stream(design, name, seed):
    if name == "stressmark":
        spec, _ = tune_stressmark(design.pdn, design.config)
        return stressmark_stream(spec), 2000
    return get_profile(name).stream(seed=seed), 60000


def cmd_analyze(args, out):
    """The ``analyze`` command: envelope, network, threshold table."""
    design = _design(args)
    print("current envelope: %.1f .. %.1f A" % (design.i_min, design.i_max),
          file=out)
    peak, f_peak = design.pdn.peak_impedance()
    print("network: peak %.3f mOhm at %.1f MHz (%g%% of target impedance)"
          % (peak * 1e3, f_peak / 1e6, args.impedance), file=out)
    rows = []
    for delay in range(args.max_delay + 1):
        d = design.thresholds(delay=delay, actuator_kind=args.actuator)
        rows.append([delay, "%.3f" % d.v_low, "%.3f" % d.v_high,
                     "%.0f" % d.window_mv])
    print(format_table(["delay", "v_low (V)", "v_high (V)", "window (mV)"],
                       rows, title="thresholds (%s actuator)"
                       % args.actuator), file=out)
    return 0


def cmd_stressmark(args, out):
    """The ``stressmark`` command: tune the loop, report its damage."""
    design = _design(args)
    spec, period = tune_stressmark(design.pdn, design.config)
    print("tuned: %d divides, %d burst groups; period %.1f cycles "
          "(resonant target %.1f)"
          % (spec.n_divides, spec.burst_groups, period,
             design.pdn.resonant_period_cycles(design.config.clock_hz)),
          file=out)
    result = design.run(stressmark_stream(spec), delay=None,
                        warmup_instructions=2000, max_cycles=args.cycles)
    e = result.emergencies
    print("uncontrolled: voltage [%.4f, %.4f] V, %d emergency cycles "
          "(%.2f%%)" % (e["v_min"], e["v_max"], e["emergency_cycles"],
                        100 * e["frequency"]), file=out)
    return 0


def cmd_characterize(args, out):
    """The ``characterize`` command: per-benchmark voltage behaviour."""
    design = _design(args)
    rows = []
    for name in args.benchmarks:
        stream, warmup = _stream(design, name, args.seed)
        result = design.run(stream, delay=None,
                            warmup_instructions=warmup,
                            max_cycles=args.cycles, record_traces=True)
        dist = VoltageDistribution(result.voltages)
        e = result.emergencies
        rows.append([name, "%.3f" % result.ipc, "%.4f" % dist.mean,
                     "%.1f" % (dist.std * 1e3),
                     "%.4f" % e["v_min"], "%.4f" % e["v_max"],
                     e["emergency_cycles"]])
    print(format_table(
        ["benchmark", "ipc", "mean V", "std (mV)", "min V", "max V",
         "emergencies"], rows,
        title="characterization at %g%% impedance" % args.impedance),
        file=out)
    return 0


def _write_text(path, text):
    with open(path, "w") as fh:
        fh.write(text + "\n")


def _write_text_atomic(path, text):
    """Write ``text`` to ``path`` via a same-directory temp file and
    :func:`os.replace`, so a crash mid-write never leaves a torn
    report."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text + "\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _trace_metadata(args, design, controlled=True):
    """Chrome-trace ``otherData`` describing the traced run."""
    meta = {
        "workload": args.workload,
        "impedance_percent": args.impedance,
        "cycles": args.cycles,
        "seed": args.seed,
        "controlled": controlled,
    }
    if controlled:
        meta.update(delay=args.delay, error=args.error,
                    actuator=args.actuator)
    meta.update(design.pdn.describe()
                if hasattr(design.pdn, "describe") else {})
    return meta


def cmd_control(args, out):
    """The ``control`` command: controlled vs uncontrolled run."""
    from repro.telemetry import Telemetry

    design = _design(args)
    stream, warmup = _stream(design, args.workload, args.seed)
    base = design.run(stream, delay=None, warmup_instructions=warmup,
                      max_cycles=args.cycles)
    telemetry = (Telemetry.full()
                 if (args.trace_out or args.metrics_out) else None)
    stream2, _ = _stream(design, args.workload, args.seed)
    controlled = design.run(stream2, delay=args.delay, error=args.error,
                            actuator_kind=args.actuator,
                            warmup_instructions=warmup,
                            max_cycles=args.cycles, telemetry=telemetry)
    if args.trace_out:
        _write_text(args.trace_out, telemetry.trace.to_chrome_json(
            metadata=_trace_metadata(args, design)))
        print("trace written to %s" % args.trace_out, file=sys.stderr)
    if args.metrics_out:
        _write_text(args.metrics_out, telemetry.metrics.to_json())
        print("metrics written to %s" % args.metrics_out, file=sys.stderr)
    rows = [
        ["uncontrolled", base.emergencies["emergency_cycles"],
         "%.4f" % base.emergencies["v_min"], "%.3f" % base.ipc, "-", "-"],
        ["controlled", controlled.emergencies["emergency_cycles"],
         "%.4f" % controlled.emergencies["v_min"], "%.3f" % controlled.ipc,
         "%.2f%%" % performance_loss_percent(base, controlled),
         "%.2f%%" % energy_increase_percent(base, controlled)],
    ]
    print(format_table(
        ["run", "emergencies", "min V", "ipc", "perf loss", "energy incr"],
        rows, title="%s, delay %d, %s actuator, %g%% impedance"
        % (args.workload, args.delay, args.actuator, args.impedance)),
        file=out)
    return 0


def cmd_campaign(args, out):
    """The ``campaign`` command: fault sweep + resilience table."""
    from repro.orchestrator import DEFAULT_WORKLOADS

    workloads = list(args.workloads or DEFAULT_WORKLOADS)
    unknown = [w for w in workloads
               if w != "stressmark" and w not in SPEC2000]
    if unknown:
        print("error: unknown workload(s) %s (known: %s, 'stressmark')"
              % (", ".join(repr(w) for w in unknown),
                 ", ".join(sorted(SPEC2000))), file=sys.stderr)
        return EXIT_USAGE
    # With ``--json -`` keep stdout pure JSON so it can be piped; the
    # human-readable table moves to stderr.
    table_out = sys.stderr if args.json == "-" else out
    report = run_campaign(
        workloads=workloads, faults=args.faults, cycles=args.cycles,
        warmup_instructions=args.warmup, seed=args.seed,
        impedance_percent=args.impedance, delay=args.delay,
        actuator_kind=args.actuator, fault_start=args.fault_start,
        budget_seconds=args.budget_seconds, jobs=args.jobs)
    rows = []
    for o in report.outcomes:
        rows.append([
            o.workload, o.fault, o.status, o.emergency_cycles,
            o.emergencies_missed,
            "-" if o.ipc_lost_percent is None
            else "%.2f%%" % o.ipc_lost_percent,
            o.failsafe_transitions,
            "yes" if o.failsafe_active else "no",
        ])
    print(format_table(
        ["workload", "fault", "status", "emergencies", "missed",
         "ipc lost", "failsafe", "degraded"], rows,
        title="fault campaign: %d cycles, faults from cycle %d, seed %d"
        % (args.cycles, args.fault_start, args.seed)), file=table_out)
    for workload, base in sorted(report.baselines.items()):
        print("baseline %s: %d emergency cycles, ipc %.3f (%s)"
              % (workload, base["emergency_cycles"], base["ipc"],
                 base["status"]), file=table_out)
    if args.json:
        text = report.to_json()
        if args.json == "-":
            print(text, file=out)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
            print("report written to %s" % args.json, file=table_out)
    return 0


def _parse_controller(token):
    """``'none'`` or ``ACTUATOR[:DELAY[:ERROR]]`` -> spec knobs."""
    from repro.orchestrator import parse_controller

    return parse_controller(token)


def _trace_store_for(args):
    """The trace store honoring ``--trace-dir``.

    An explicit directory is also exported as ``REPRO_TRACE_DIR`` so
    pool worker processes (and a locally spawned server) replay from
    the same store.
    """
    from repro.traces import TraceStore

    trace_dir = getattr(args, "trace_dir", None)
    if trace_dir:
        os.environ["REPRO_TRACE_DIR"] = os.path.abspath(trace_dir)
    return TraceStore()


def _sweep_grid(args):
    """The (specs, settings) pair for the grid flags, or raises
    ``ValueError`` for a bad token.

    Suites named with ``--suite`` expand here (against built-ins and
    the trace store) and contribute a ``settings["suites"]``
    membership block, which is what puts per-suite aggregate tables
    into the merged report.  With neither ``--workloads`` nor
    ``--suite``, the documented default grid
    (:data:`~repro.orchestrator.grid.DEFAULT_WORKLOADS`) applies.
    """
    from repro.orchestrator import (
        DEFAULT_WORKLOADS,
        build_grid,
        canonical_workloads,
    )

    workloads = list(args.workloads or [])
    suite_names = list(getattr(args, "suite", None) or [])
    store = _trace_store_for(args)
    members = {}
    if suite_names:
        from repro.traces import expand_suites
        expanded, members = expand_suites(suite_names, store)
        workloads = workloads + expanded
    if not workloads:
        workloads = list(DEFAULT_WORKLOADS)
    specs, settings = build_grid(
        workloads, impedances=args.impedances,
        controllers=args.controllers, cycles=args.cycles,
        warmup=args.warmup, seed=args.seed, store=store)
    if members:
        suites = {}
        for name in sorted(members):
            canon, store = canonical_workloads(members[name], store=store)
            suites[name] = canon
        settings["suites"] = suites
    return specs, settings


def cmd_sweep(args, out):
    """The ``sweep`` command: grid -> orchestrator -> merged JSON.

    Exit codes: 0 every cell ``ok``; 1 at least one cell ended in a
    failure status (``diverged``/``budget``/``error``/``crashed``);
    2 usage error; 3 interrupted by SIGINT/SIGTERM (journal flushed,
    ``--resume`` finishes the remainder).
    """
    from repro.orchestrator import (
        JournalError,
        JournalWriteError,
        ResultCache,
        Runner,
        SweepInterrupted,
        SweepJournal,
        replay_journal,
        report_json,
    )
    from repro.telemetry import MetricsRegistry, SpanProfiler, Telemetry

    if args.no_speculate:
        # Pool workers inherit the environment, so one assignment
        # covers in-process cells and every worker process alike.
        os.environ["REPRO_NO_SPECULATE"] = "1"
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    journal_path = args.journal
    resume_results = None
    try:
        if args.resume:
            if journal_path and (os.path.abspath(journal_path)
                                 != os.path.abspath(args.resume)):
                raise ValueError("--journal must name the same file as "
                                 "--resume (or be omitted)")
            journal_path = args.resume
            try:
                replayed = replay_journal(journal_path,
                                          expected_salt=cache.salt)
            except OSError as exc:
                raise ValueError("cannot resume: %s" % exc)
            if args.workloads or args.suite:
                # An explicitly-given grid wins; journalled cells are
                # still reused wherever their content hashes match.
                specs, settings = _sweep_grid(args)
            else:
                specs = list(replayed.specs)
                settings = dict(replayed.settings)
            if not specs:
                raise ValueError("journal %s holds no job specs (give "
                                 "--workloads to supply a grid)"
                                 % journal_path)
            resume_results = replayed.results
            print("sweep: resuming %s (%d journalled cell(s), %d "
                  "reusable)" % (journal_path, len(replayed.specs),
                                 len(resume_results)), file=sys.stderr)
        else:
            specs, settings = _sweep_grid(args)
    except (ValueError, JournalError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    if args.invalidate:
        dropped = sum(cache.invalidate(spec) for spec in specs)
        if resume_results:
            # Journal-replayed results would otherwise short-circuit
            # the very cells the user just asked to invalidate.
            for spec in specs:
                resume_results.pop(spec.content_hash(), None)
        print("sweep: invalidated %d cached cell(s)" % dropped,
              file=sys.stderr)
    telemetry = (Telemetry(metrics=MetricsRegistry(),
                           profiler=SpanProfiler())
                 if args.metrics_out else None)
    journal = None
    if journal_path:
        try:
            journal = SweepJournal(journal_path,
                                   fresh=args.resume is None)
        except (OSError, JournalError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
        try:
            if args.resume:
                journal.resumed()
                known = set(replayed.spec_hashes())
                for spec in specs:
                    if spec.content_hash() not in known:
                        journal.queued(spec)
            else:
                journal.begin_sweep(specs, settings=settings,
                                    salt=cache.salt)
        except JournalWriteError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
    runner = Runner(jobs=args.jobs, cache=cache,
                    timeout_seconds=args.timeout, retries=args.retries,
                    crash_retries=args.crash_retries,
                    journal=journal, resume_results=resume_results,
                    telemetry=telemetry, replay=not args.no_replay)
    try:
        outcomes = runner.run(specs)
    except JournalWriteError as exc:
        # The journal's fail-loud domain: a record did not persist, so
        # durability can no longer be promised and the sweep must not
        # keep executing.  What is on disk stays replayable (at worst
        # a torn tail), so --resume works once the disk recovers.
        print("error: %s" % exc, file=sys.stderr)
        if journal_path:
            print("sweep: journal %s remains replayable; resume with: "
                  "repro-didt sweep --resume %s"
                  % (journal_path, journal_path), file=sys.stderr)
        return EXIT_USAGE
    except SweepInterrupted as exc:
        if journal is not None:
            journal.close()
        print("sweep: interrupted after %d/%d cell(s)%s"
              % (len(exc.outcomes), len(specs),
                 ("; finish with: repro-didt sweep --resume %s"
                  % journal_path) if journal_path else ""),
              file=sys.stderr)
        return EXIT_INTERRUPTED
    if journal is not None:
        try:
            journal.end()
        except JournalWriteError as exc:
            # Every cell finished, but the journal never recorded
            # completion -- fail loudly (no report) so CI does not
            # mistake this for a durable clean run; --resume replays
            # the finished cells once the disk recovers.
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
        journal.close()
        # A cleanly completed journal is all history; compact it so
        # repeated resume cycles cannot grow the WAL without bound.
        # Best-effort: a compaction hiccup must not fail a finished
        # sweep whose report is about to be written.
        try:
            from repro.orchestrator import compact_journal
            stats = compact_journal(journal_path)
        except (OSError, JournalError) as exc:
            print("sweep: journal compaction skipped (%s)" % exc,
                  file=sys.stderr)
        else:
            print("sweep: journal compacted (%d -> %d records)"
                  % (stats["records_before"], stats["records_after"]),
                  file=sys.stderr)
    text = report_json(outcomes, settings,
                       execution=args.execution_detail)
    if args.json == "-":
        print(text, file=out)
    else:
        _write_text_atomic(args.json, text)
    if isinstance(settings, dict) and settings.get("suites"):
        from repro.analysis.tables import format_suite_table
        from repro.orchestrator import suite_aggregates
        print(format_suite_table(
            suite_aggregates(outcomes, settings["suites"])),
            file=sys.stderr)
    if args.metrics_out:
        _write_text(args.metrics_out, telemetry.metrics.to_json())
        print("metrics written to %s" % args.metrics_out,
              file=sys.stderr)
    hits = sum(1 for o in outcomes if o.cached)
    resumed = sum(1 for o in outcomes if o.source == "journal")
    failures = sum(1 for o in outcomes
                   if o.result.get("status") in FAILURE_STATUSES)
    if resumed:
        print("sweep: replayed %d cell(s) from the journal" % resumed,
              file=sys.stderr)
    print("sweep: %d jobs, %d cache hits, %d executed, %d errors"
          % (len(outcomes), hits, len(outcomes) - hits, failures),
          file=sys.stderr)
    if args.json != "-":
        print("report written to %s" % args.json, file=sys.stderr)
    return EXIT_CELL_FAILURES if failures else EXIT_OK


def cmd_serve(args, out):
    """The ``serve`` command: run the sweep service daemon.

    Blocks until shutdown.  Exit codes: 0 clean stop, 2 usage error
    (bad flags, journal locked by another writer) or a journal that
    stopped persisting records mid-serve (disk fault; the WAL on disk
    stays replayable), 3 drained after SIGTERM/SIGINT (journal
    flushed; restarting on the same ``--journal`` resumes the
    admitted work).
    """
    import signal
    import threading

    from repro.orchestrator import JournalError, ResultCache
    from repro.server import SweepServer

    if args.no_speculate:
        os.environ["REPRO_NO_SPECULATE"] = "1"
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    try:
        server = SweepServer(
            args.journal, cache=cache, jobs=args.jobs,
            queue_limit=args.queue_limit, batch_limit=args.batch_limit,
            timeout_seconds=args.timeout, retries=args.retries,
            crash_retries=args.crash_retries,
            host=args.host, port=args.port,
            request_timeout=args.request_timeout,
            replay=not args.no_replay)
    except (OSError, JournalError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    port = server.start()
    if args.port_file:
        _write_text_atomic(args.port_file, str(port))
    print("serve: listening on http://%s:%d (journal %s)"
          % (server.host, port, args.journal), file=sys.stderr)
    # Between batches the runner's own SIGTERM handler is not
    # installed; route SIGTERM through KeyboardInterrupt for the whole
    # executor loop so an idle server drains exactly like a busy one.
    previous = None
    if threading.current_thread() is threading.main_thread():
        def _raise(signum, frame):
            raise KeyboardInterrupt("SIGTERM")
        try:
            previous = signal.signal(signal.SIGTERM, _raise)
        except (ValueError, OSError):
            previous = None
    try:
        code = server.run()
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    if code == EXIT_INTERRUPTED:
        print("serve: drained; resume with: repro-didt serve --journal "
              "%s" % args.journal, file=sys.stderr)
    elif code == EXIT_USAGE:
        print("serve: journal write failure; journal %s remains "
              "replayable once the disk recovers" % args.journal,
              file=sys.stderr)
    else:
        print("serve: stopped cleanly", file=sys.stderr)
    return code


def cmd_submit(args, out):
    """The ``submit`` command: grid -> server -> merged JSON report.

    The report is byte-identical to what ``sweep`` with the same grid
    flags would emit.  Exit codes: 0 every cell ``ok``; 1 at least one
    cell in a failure status; 2 usage/terminal server error; 4 the
    server stayed unreachable past the retry budget (or ``--deadline``
    passed).
    """
    from repro.orchestrator import JobOutcome, JobSpec, report_json
    from repro.server import ServerError, ServerUnavailable, SweepClient

    suite_names = list(args.suite or [])
    specs = settings = None
    if not suite_names:
        try:
            specs, settings = _sweep_grid(args)
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
    client = SweepClient(args.server, retry_budget=args.retry_budget)
    try:
        if suite_names:
            # Suites expand server-side at admission: the server owns
            # the suite registry and returns the expanded spec list,
            # so the grid a report names is exactly the grid admitted.
            _trace_store_for(args)
            grid = {"impedances": [float(p) for p in args.impedances],
                    "controllers": list(args.controllers),
                    "cycles": args.cycles, "warmup": args.warmup,
                    "seed": args.seed}
            receipt = client.submit_suites(
                suite_names, grid, workloads=args.workloads or [])
            specs = [JobSpec.from_dict(d) for d in receipt["specs"]]
            settings = dict(grid)
            settings["workloads"] = list(receipt["workloads"])
            settings["suites"] = {
                name: list(members) for name, members
                in sorted(receipt["suite_members"].items())}
            if args.no_wait:
                print(json.dumps(receipt, sort_keys=True, indent=2),
                      file=out)
                return EXIT_OK
            results = client.wait(specs, poll_seconds=args.poll_seconds,
                                  deadline_seconds=args.deadline,
                                  submitted=True)
        elif args.no_wait:
            payload = client.submit(specs)
            print(json.dumps(payload, sort_keys=True, indent=2),
                  file=out)
            return EXIT_OK
        else:
            results = client.wait(specs, poll_seconds=args.poll_seconds,
                                  deadline_seconds=args.deadline)
    except ServerUnavailable as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_UNAVAILABLE
    except (ValueError, KeyError) as exc:
        print("error: malformed server receipt: %s" % exc,
              file=sys.stderr)
        return EXIT_USAGE
    except TimeoutError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_UNAVAILABLE
    except ServerError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    outcomes = [JobOutcome(spec, results[spec.content_hash()],
                           cached=True, attempts=0, source="server")
                for spec in specs]
    text = report_json(outcomes, settings)
    if args.json == "-":
        print(text, file=out)
    else:
        _write_text_atomic(args.json, text)
        print("report written to %s" % args.json, file=sys.stderr)
    failures = sum(1 for o in outcomes
                   if o.result.get("status") in FAILURE_STATUSES)
    print("submit: %d cell(s) from %s, %d failure(s)"
          % (len(outcomes), args.server, failures), file=sys.stderr)
    return EXIT_CELL_FAILURES if failures else EXIT_OK


def cmd_poll(args, out):
    """The ``poll`` command: check job hashes on a running server.

    Prints ``{"jobs": {hash: payload-or-null}}``.  Exit codes: 0 every
    polled job is known and done, 1 otherwise, 4 server unreachable.
    """
    from repro.server import ServerError, ServerUnavailable, SweepClient

    client = SweepClient(args.server, retry_budget=args.retry_budget)
    payloads = {}
    code = EXIT_OK
    try:
        for job in args.jobs:
            found, payload, _etag = client.poll(job)
            payloads[job] = payload if found else None
            if not found or not payload \
                    or payload.get("status") != "done":
                code = EXIT_CELL_FAILURES
    except (ServerUnavailable, ServerError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return (EXIT_UNAVAILABLE if isinstance(exc, ServerUnavailable)
                else EXIT_USAGE)
    print(json.dumps({"jobs": payloads}, sort_keys=True, indent=2),
          file=out)
    return code


def cmd_journal(args, out):
    """The ``journal`` command: maintenance on a sweep journal."""
    from repro.orchestrator import JournalError, compact_journal

    try:
        stats = compact_journal(args.path)
    except FileNotFoundError:
        print("error: no journal at %s" % args.path, file=sys.stderr)
        return EXIT_USAGE
    except (OSError, JournalError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    print(json.dumps(stats, sort_keys=True, indent=2), file=out)
    return EXIT_OK


def cmd_cache(args, out):
    """The ``cache`` command: inspect or empty a cache.

    The default target is the result cache; ``--captures`` swaps in
    the captured power-trace cache (same root and salt discipline,
    same stats/clear/orphan-sweep surface).
    """
    from repro.orchestrator import ResultCache

    if args.captures:
        from repro.orchestrator.tracecache import CurrentTraceCache

        cache = CurrentTraceCache(root=args.cache_dir)
    else:
        cache = ResultCache(root=args.cache_dir)
    if args.action == "stats":
        info = cache.stats(verify=not args.no_verify)
        print(json.dumps(info, sort_keys=True, indent=2), file=out)
        return EXIT_OK
    reclaimed = cache.sweep_orphans(max_age_seconds=0.0)
    removed = cache.clear()
    print(json.dumps({"root": cache.root, "salt": cache.salt,
                      "removed": removed,
                      "orphan_tmp_reclaimed": reclaimed},
                     sort_keys=True, indent=2), file=out)
    return EXIT_OK


def cmd_doctor(args, out):
    """The ``doctor`` command: scrub every persistence surface.

    Prints the byte-stable report JSON.  Exit codes: 0 everything
    clean (or ``--fix`` repaired every problem), 1 problems remain,
    2 usage error.
    """
    from repro.doctor import scrub

    try:
        report = scrub(cache_root=args.cache_dir,
                       trace_root=args.trace_dir,
                       warm_root=args.warm_dir,
                       journals=args.journals,
                       fix=args.fix)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    text = json.dumps(report, sort_keys=True, indent=2)
    print(text, file=out)
    if args.json_out:
        _write_text_atomic(args.json_out, text)
    return EXIT_OK if report["unfixed"] == 0 else EXIT_CELL_FAILURES


def cmd_trace(args, out):
    """The ``trace`` command: instrumented run(s), traces exported.

    The default traces *two* runs of the workload -- the uncontrolled
    baseline and the controlled run -- as two process tracks in one
    Chrome trace, so the emergency windows the controller eliminates
    sit right above the actuation windows that eliminated them.
    ``--uncontrolled`` traces only the baseline; ``--no-baseline``
    only the controlled run.
    """
    from repro.analysis.tracestats import format_summary, summarize_events
    from repro.control.loop import ClosedLoopSimulation
    from repro.telemetry import Telemetry, TraceRecorder, \
        merged_chrome_json
    from repro.uarch.core import Machine

    if args.capacity < 1:
        print("error: --capacity must be >= 1", file=sys.stderr)
        return 2
    design = _design(args)

    def one_run(controlled, telemetry):
        stream, default_warmup = _stream(design, args.workload, args.seed)
        warmup = (args.warmup if args.warmup is not None
                  else default_warmup)
        machine = Machine(design.config, stream)
        if warmup:
            machine.fast_forward(warmup)
        controller = None
        if controlled:
            factory = design.controller_factory(
                delay=args.delay, error=args.error,
                actuator_kind=args.actuator, seed=args.seed)
            controller = factory(machine, design.power_model)
        loop = ClosedLoopSimulation(machine, design.power_model,
                                    design.pdn, controller=controller,
                                    telemetry=telemetry)
        return loop, loop.run(max_cycles=args.cycles)

    def describe(result, label):
        e = result.emergencies
        return ("%s at %g%% impedance, %s: %d cycles, ipc %.3f, "
                "voltage [%.4f, %.4f] V, %d emergency cycles"
                % (args.workload, args.impedance, label, result.cycles,
                   result.ipc, e["v_min"], e["v_max"],
                   e["emergency_cycles"]))

    telemetry = Telemetry.full(capacity=args.capacity)
    sections = []
    if args.uncontrolled:
        loop, result = one_run(False, telemetry)
        sections.append(("uncontrolled", telemetry.trace))
        print(describe(result, "uncontrolled"), file=out)
    else:
        if not args.no_baseline:
            base_tel = Telemetry(
                trace=TraceRecorder(capacity=args.capacity))
            _base_loop, base_result = one_run(False, base_tel)
            sections.append(("uncontrolled", base_tel.trace))
            print(describe(base_result, "uncontrolled baseline"),
                  file=out)
        loop, result = one_run(True, telemetry)
        sections.append(("controlled", telemetry.trace))
        print(describe(result, "delay %d, %s actuator"
                       % (args.delay, args.actuator)), file=out)
    for label, trace in sections:
        summary = summarize_events(trace.events(),
                                   last_cycle=loop.pdn_sim.cycles)
        print("%s %s" % (label, format_summary(summary)), file=out)
        if trace.dropped:
            print("note: %s ring buffer dropped %d event(s); raise "
                  "--capacity" % (label, trace.dropped), file=sys.stderr)
    metadata = _trace_metadata(args, design,
                               controlled=not args.uncontrolled)
    metadata.update(loop.pdn_sim.describe())
    if args.trace_out:
        _write_text(args.trace_out,
                    merged_chrome_json(sections, metadata=metadata))
        print("trace written to %s" % args.trace_out, file=sys.stderr)
    if args.jsonl_out:
        _write_text(args.jsonl_out, telemetry.trace.to_jsonl())
        print("events written to %s" % args.jsonl_out, file=sys.stderr)
    if args.metrics_out:
        _write_text(args.metrics_out, telemetry.metrics.to_json())
        print("metrics written to %s" % args.metrics_out,
              file=sys.stderr)
    return 0


def cmd_traces(args, out):
    """The ``traces`` command: the imported power-trace store.

    ``import``/``validate`` exit-code contract (documented in the
    README exit-code table): 0 the file is a valid trace; 1 the file
    is readable but violates the trace schema (non-finite or negative
    samples, torn JSONL tail, truncated NPY, mixed units, empty); 2
    usage error (unreadable path, unknown format, missing units,
    conflicting flags).
    """
    from repro.traces import TraceValidationError, load_trace

    action = args.traces_command
    store = _trace_store_for(args)
    if action in ("import", "validate"):
        try:
            trace = load_trace(args.path, fmt=args.format,
                               units=args.units, clock_hz=args.clock_hz,
                               name=args.name)
        except TraceValidationError as exc:
            print("error: invalid trace: %s" % exc, file=sys.stderr)
            return EXIT_CELL_FAILURES
        except (OSError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_USAGE
        if action == "validate":
            print("valid: %s -- %d samples, units %s, clock %g Hz, "
                  "hash %s" % (args.path, trace.n_samples, trace.units,
                               trace.clock_hz, trace.content_hash()),
                  file=out)
            return EXIT_OK
        try:
            digest = store.put(trace)
        except OSError as exc:
            # Fail-loud domain: a half-imported trace must never look
            # imported (injectable via REPRO_IOCHAOS=...@traces).
            print("error: trace store write failed: %s" % exc,
                  file=sys.stderr)
            return EXIT_USAGE
        print("imported %s as trace:%s (%d samples, units %s, "
              "name %s)" % (args.path, digest, trace.n_samples,
                            trace.units, trace.name), file=out)
        return EXIT_OK
    if action == "list":
        rows = [[m.get("name") or "-", m["hash"][:12],
                 m["n_samples"], m["units"], "%g" % m["clock_hz"]]
                for m in store.list()]
        print(format_table(
            ["name", "hash", "samples", "units", "clock (Hz)"], rows,
            title="trace store at %s" % store.root), file=out)
        for name, members in sorted(store.list_suites().items()):
            print("suite %s: %s" % (name, ", ".join(members)), file=out)
        return EXIT_OK
    # action == "suite": canonicalise members, then store immutably.
    members = []
    try:
        for token in args.members:
            if token == "stressmark" or token in SPEC2000:
                members.append(token)
                continue
            ref = token[len("trace:"):] if token.startswith("trace:") \
                else token
            try:
                members.append("trace:" + store.resolve(ref))
            except KeyError as exc:
                raise ValueError(exc.args[0] if exc.args else str(exc))
        path = store.put_suite(args.name, members)
    except (ValueError, OSError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_USAGE
    print("suite %s: %d member(s) -> %s"
          % (args.name, len(members), path), file=out)
    return EXIT_OK


def cmd_list(args, out):
    """The ``list`` command: available synthetic workloads."""
    rows = [[name, profile.description]
            for name, profile in sorted(SPEC2000.items())]
    rows.append(["stressmark", "the auto-tuned dI/dt stressmark "
                               "(Section 3.2)"])
    print(format_table(["workload", "description"], rows), file=out)
    return 0


_COMMANDS = {
    "analyze": cmd_analyze,
    "stressmark": cmd_stressmark,
    "characterize": cmd_characterize,
    "control": cmd_control,
    "campaign": cmd_campaign,
    "sweep": cmd_sweep,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "poll": cmd_poll,
    "journal": cmd_journal,
    "cache": cmd_cache,
    "doctor": cmd_doctor,
    "traces": cmd_traces,
    "trace": cmd_trace,
    "run": cmd_trace,        # alias registered on the trace sub-parser
    "list": cmd_list,
}


def main(argv=None, out=None):
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except KeyError as exc:
        print("error: %s" % exc, file=out)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
