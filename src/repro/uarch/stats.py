"""Aggregate run statistics for the cycle simulator."""


class MachineStats:
    """Counters accumulated over a run.

    Attributes:
        cycles: cycles simulated.
        committed: instructions retired.
        fetched: instructions fetched.
        mispredictions: resolved mispredicted branches.
        flushes: pipeline flushes (actuation recovery, Section 6).
        gated_fu_cycles / gated_dl1_cycles / gated_il1_cycles: cycles the
            respective unit group spent clock-gated by the actuator.
        phantom_fu_cycles: cycles the FU group spent phantom-firing.
    """

    def __init__(self):
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.mispredictions = 0
        self.flushes = 0
        self.total_issued = 0
        self.gated_fu_cycles = 0
        self.gated_dl1_cycles = 0
        self.gated_il1_cycles = 0
        self.phantom_fu_cycles = 0

    def record_cycle(self, activity):
        """Fold one cycle's activity into the aggregates."""
        self.cycles += 1
        # issued_total inlined: this runs every simulated cycle and the
        # property call costs as much as the additions themselves.
        self.total_issued += (
            activity.issued_int_alu + activity.issued_int_mult +
            activity.issued_fp_alu + activity.issued_fp_mult +
            activity.issued_mem_port)
        if activity.fu_gated:
            self.gated_fu_cycles += 1
        if activity.dl1_gated:
            self.gated_dl1_cycles += 1
        if activity.il1_gated:
            self.gated_il1_cycles += 1
        if activity.fu_phantom:
            self.phantom_fu_cycles += 1

    @property
    def ipc(self):
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    def summary(self):
        """A plain dict of the headline numbers."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "mispredictions": self.mispredictions,
            "flushes": self.flushes,
            "gated_fu_cycles": self.gated_fu_cycles,
            "gated_dl1_cycles": self.gated_dl1_cycles,
            "gated_il1_cycles": self.gated_il1_cycles,
            "phantom_fu_cycles": self.phantom_fu_cycles,
        }

    def __repr__(self):
        return ("MachineStats(cycles=%d, committed=%d, ipc=%.3f, "
                "mispredictions=%d)" % (self.cycles, self.committed,
                                        self.ipc, self.mispredictions))
