"""Machine configuration (the paper's Table 1)."""

from dataclasses import dataclass, field

from repro.isa.opcodes import default_intervals, default_latencies


@dataclass
class MachineConfig:
    """Processor parameters.

    Defaults reproduce Table 1 of the paper; tests and sweeps override
    individual fields.  All widths are instructions per cycle, latencies
    are cycles.
    """

    # Execution core.
    clock_hz: float = 3.0e9
    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    ruu_size: int = 256
    lsq_size: int = 128
    fetch_queue_size: int = 32

    # Functional units (Table 1).
    n_int_alu: int = 8
    n_int_mult: int = 2
    n_fp_alu: int = 4
    n_fp_mult: int = 2
    n_mem_ports: int = 4

    # Front end.  The paper notes it added pipeline stages so that refill
    # after a branch misprediction produces a realistic current swing; the
    # 10-cycle penalty is the fetch-to-redispatch depth.
    branch_penalty: int = 10

    # When True, the front end is charged (power-wise) for chasing the
    # wrong path while a mispredicted branch resolves, instead of going
    # quiet.  Timing is unaffected -- only the activity record changes.
    # Off by default: the calibrated experiments use the quiet-shadow
    # model; the ablation bench quantifies the difference.
    model_wrong_path: bool = False

    # Branch predictor: combined 64 Kbit chooser / bimodal / gshare
    # (i.e. 32K 2-bit counters each), 1K-entry BTB, 64-entry RAS.
    bimodal_entries: int = 32768
    gshare_entries: int = 32768
    chooser_entries: int = 32768
    gshare_history_bits: int = 15
    btb_entries: int = 1024
    btb_assoc: int = 4
    ras_entries: int = 64

    # Memory hierarchy.
    line_size: int = 64
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 2
    l1d_latency: int = 2
    l1i_size: int = 64 * 1024
    l1i_assoc: int = 2
    l1i_latency: int = 1
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 4
    l2_latency: int = 16
    memory_latency: int = 300

    # Execution latencies / issue intervals per instruction class; copies
    # of the ISA defaults so a config can be tweaked without global effect.
    latencies: dict = field(default_factory=default_latencies)
    intervals: dict = field(default_factory=default_intervals)

    def __post_init__(self):
        if self.fetch_width <= 0 or self.issue_width <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.ruu_size <= 0 or self.lsq_size <= 0:
            raise ValueError("window sizes must be positive")
        if self.lsq_size > self.ruu_size:
            raise ValueError("LSQ cannot be larger than the RUU")
        for name in ("l1d", "l1i", "l2"):
            size = getattr(self, name + "_size")
            assoc = getattr(self, name + "_assoc")
            if size % (self.line_size * assoc) != 0:
                raise ValueError("%s: size %d not divisible by line*assoc"
                                 % (name, size))

    @property
    def cycle_time(self):
        """Seconds per cycle."""
        return 1.0 / self.clock_hz

    def small(self):
        """A scaled-down copy for fast unit tests (same shape, tiny tables)."""
        cfg = MachineConfig(
            clock_hz=self.clock_hz,
            fetch_width=4, decode_width=4, issue_width=4, commit_width=4,
            ruu_size=32, lsq_size=16, fetch_queue_size=8,
            n_int_alu=2, n_int_mult=1, n_fp_alu=2, n_fp_mult=1, n_mem_ports=2,
            branch_penalty=self.branch_penalty,
            bimodal_entries=256, gshare_entries=256, chooser_entries=256,
            gshare_history_bits=8, btb_entries=64, btb_assoc=2, ras_entries=8,
            line_size=64,
            l1d_size=4096, l1d_assoc=2, l1d_latency=self.l1d_latency,
            l1i_size=4096, l1i_assoc=2, l1i_latency=self.l1i_latency,
            l2_size=64 * 1024, l2_assoc=4, l2_latency=self.l2_latency,
            memory_latency=self.memory_latency,
        )
        return cfg
