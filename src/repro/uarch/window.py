"""Instruction window structures: RUU entries and the load/store queue.

Following SimpleScalar's design (which the paper's Wattch setup inherits),
the register update unit (RUU) unifies the reorder buffer and reservation
stations: every in-flight instruction holds one RUU entry from dispatch
to commit, and memory operations additionally hold a load/store queue
(LSQ) entry that enforces memory ordering.
"""

from collections import deque

from repro.isa.opcodes import InstrClass

#: Entry lifecycle states.
ST_WAITING = 0    # in the window, register operands outstanding
ST_READY = 1      # operands ready, waiting for issue bandwidth / FU
ST_EXECUTING = 2  # occupying a functional unit
ST_DONE = 3       # result produced, waiting to commit

#: Byte granularity at which loads and stores are considered to conflict.
MEM_GRANULE_BITS = 3


def granule_of(addr):
    """Memory-ordering granule (8-byte aligned block) of an address."""
    return addr >> MEM_GRANULE_BITS


class RuuEntry:
    """One in-flight instruction.

    Attributes:
        inst: the :class:`~repro.isa.instruction.DynamicInst`.
        state: one of the ``ST_*`` constants.
        deps: number of unavailable register source operands.
        waiters: entries whose operands this entry produces.
        remaining: execution cycles left once ``ST_EXECUTING``.
        prediction: fetch-time branch prediction (branches only).
        mispredicted: resolved-against-prediction flag (branches only).
        seq: dynamic sequence number (program order).
        iclass: the instruction's :class:`InstrClass`.
        granule: memory-ordering granule of the access (memory
            operations only, else ``None``).  Precomputed here because
            the LSQ ordering scans compare granules on every issue
            attempt.
    """

    __slots__ = ("inst", "state", "deps", "waiters", "remaining",
                 "prediction", "mispredicted", "seq", "iclass",
                 "granule", "is_store")

    def __init__(self, inst, prediction=None):
        iclass = inst.op.iclass
        self.inst = inst
        self.state = ST_WAITING
        self.deps = 0
        self.waiters = []
        self.remaining = 0
        self.prediction = prediction
        self.mispredicted = False
        self.seq = inst.seq
        self.iclass = iclass
        self.is_store = iclass is InstrClass.STORE
        self.granule = (inst.addr >> MEM_GRANULE_BITS
                        if iclass.is_memory else None)

    def __repr__(self):
        return "<RuuEntry #%d %s state=%d deps=%d>" % (
            self.seq, self.inst.op.name, self.state, self.deps)


class LoadStoreQueue:
    """Memory ordering over the in-flight loads and stores.

    The model is conservative but simple: a load may not issue while any
    un-issued store to the same 8-byte granule sits in the queue; once
    the conflicting store has issued (its data is ready), the load
    *forwards* from it and skips the data cache.  Stores write the cache
    at commit.  This captures what matters for current shaping -- loads
    serialized behind stores keep units idle -- without a full
    dependence-speculation model.
    """

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("LSQ capacity must be positive")
        self.capacity = capacity
        self.entries = deque()  # program order

    def __len__(self):
        return len(self.entries)

    @property
    def full(self):
        """Whether the queue has no free entries."""
        return len(self.entries) >= self.capacity

    def dispatch(self, entry):
        """Add a load/store entry at dispatch time."""
        if self.full:
            raise RuntimeError("dispatch into a full LSQ")
        self.entries.append(entry)

    def blocking_store(self, entry):
        """The oldest *older* un-issued store conflicting with this load.

        Returns ``None`` when the load may proceed.  Only stores earlier
        in program order can block, so the blocking relation is acyclic
        and loads always eventually unblock.

        The scans here and in :meth:`load_forwards` run on every load
        issue attempt, so they compare the granules and store flags
        precomputed on :class:`RuuEntry` and exploit the ``ST_*``
        ordering (``ST_WAITING < ST_READY < ST_EXECUTING < ST_DONE``)
        instead of membership tests.
        """
        g = entry.granule
        for other in self.entries:
            if other is entry:
                return None
            if (other.is_store and other.granule == g and
                    other.state <= ST_READY):
                return other
        return None

    def load_forwards(self, entry):
        """Whether an issued, un-committed older store feeds this load."""
        g = entry.granule
        for other in self.entries:
            if other is entry:
                return False
            if (other.is_store and other.granule == g and
                    other.state >= ST_EXECUTING):
                return True
        return False

    def commit(self, entry):
        """Remove the (oldest) entry at commit."""
        if not self.entries or self.entries[0] is not entry:
            raise RuntimeError("LSQ commit out of order")
        self.entries.popleft()
