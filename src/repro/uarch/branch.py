"""Branch prediction: combined bimodal/gshare with chooser, BTB, RAS.

Matches Table 1's front end: a combining (tournament) predictor with a
64 Kbit chooser selecting between a 64 Kbit bimodal table and a 64 Kbit
gshare, a 1K-entry set-associative branch target buffer, and a 64-entry
return address stack.
"""


def _saturating_update(counter, taken, maximum=3):
    """2-bit saturating counter update."""
    if taken:
        return counter + 1 if counter < maximum else counter
    return counter - 1 if counter > 0 else counter


class BimodalTable:
    """PC-indexed table of 2-bit saturating counters."""

    #: First-touch undo journal (``index -> pre-update counter``),
    #: installed by :class:`~repro.core.snapshot.MachineSnapshot` while
    #: a speculated chunk runs; cheaper than copying the 16K-entry
    #: table per chunk.
    _log = None

    def __init__(self, entries):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.table = [2] * entries  # weakly taken

    def _index(self, pc):
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc):
        """Predicted direction for the branch at ``pc``."""
        return self.table[self._index(pc)] >= 2

    def update(self, pc, taken):
        """Train the counter at ``pc`` on the outcome."""
        i = self._index(pc)
        log = self._log
        if log is not None and i not in log:
            log[i] = self.table[i]
        self.table[i] = _saturating_update(self.table[i], taken)


class GshareTable:
    """Global-history-xor-PC indexed table of 2-bit counters."""

    #: Same first-touch undo journal as :attr:`BimodalTable._log` (the
    #: ``history`` scalar is saved by the snapshot itself).
    _log = None

    def __init__(self, entries, history_bits):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.history = 0
        self.table = [2] * entries

    def _index(self, pc):
        return ((pc >> 2) ^ self.history) & (self.entries - 1)

    def predict(self, pc):
        return self.table[self._index(pc)] >= 2

    def update(self, pc, taken):
        i = self._index(pc)
        log = self._log
        if log is not None and i not in log:
            log[i] = self.table[i]
        self.table[i] = _saturating_update(self.table[i], taken)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


class Btb:
    """Set-associative branch target buffer with LRU replacement."""

    #: First-touch undo journal of whole ways lists, as in
    #: :attr:`~repro.uarch.cache.Cache._log`.
    _log = None

    def __init__(self, entries, assoc):
        if entries % assoc != 0:
            raise ValueError("entries must be divisible by associativity")
        self.n_sets = entries // assoc
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self.assoc = assoc
        # Each set: list of (tag, target) in LRU order (front = MRU).
        self.sets = [[] for _ in range(self.n_sets)]

    def _set_and_tag(self, pc):
        index = (pc >> 2) & (self.n_sets - 1)
        tag = pc >> 2
        ways = self.sets[index]
        log = self._log
        if log is not None and index not in log:
            log[index] = list(ways)
        return ways, tag

    def lookup(self, pc):
        """Predicted target for ``pc``, or ``None`` on a BTB miss."""
        ways, tag = self._set_and_tag(pc)
        for i, (t, target) in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return target
        return None

    def insert(self, pc, target):
        """Record (or refresh) the target for the branch at ``pc``."""
        ways, tag = self._set_and_tag(pc)
        for i, (t, _) in enumerate(ways):
            if t == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self.assoc:
            ways.pop()


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (oldest entry lost)."""

    def __init__(self, entries):
        if entries <= 0:
            raise ValueError("RAS must have at least one entry")
        self.entries = entries
        self.stack = []

    def push(self, return_pc):
        """Push a return address (a call was predicted)."""
        self.stack.append(return_pc)
        if len(self.stack) > self.entries:
            self.stack.pop(0)

    def pop(self):
        """Predicted return target, or ``None`` if the stack is empty."""
        if self.stack:
            return self.stack.pop()
        return None

    def __len__(self):
        return len(self.stack)


class Prediction:
    """Outcome of one front-end lookup."""

    __slots__ = ("taken", "target", "used_gshare")

    def __init__(self, taken, target, used_gshare=False):
        self.taken = taken
        self.target = target
        self.used_gshare = used_gshare


class CombinedPredictor:
    """Tournament predictor + BTB + RAS, with accuracy accounting.

    The simulator asks :meth:`predict` at fetch and calls :meth:`update`
    at branch resolution with the true outcome; :meth:`update` returns
    whether the fetch-time prediction was correct (direction *and*
    target), which is what triggers the pipeline flush and the paper's
    refill current swing.
    """

    def __init__(self, config):
        self.bimodal = BimodalTable(config.bimodal_entries)
        self.gshare = GshareTable(config.gshare_entries,
                                  config.gshare_history_bits)
        self.chooser = BimodalTable(config.chooser_entries)
        self.btb = Btb(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.lookups = 0
        self.mispredictions = 0

    def predict(self, inst):
        """Predict a branch at fetch time.

        Args:
            inst: the branch :class:`~repro.isa.instruction.DynamicInst`.

        Returns:
            A :class:`Prediction`.
        """
        self.lookups += 1
        pc = inst.pc
        if inst.op.is_return:
            target = self.ras.pop()
            return Prediction(taken=True, target=target)
        if inst.op.is_call:
            self.ras.push(pc + 4)
            target = self.btb.lookup(pc)
            return Prediction(taken=True, target=target)
        if not inst.op.is_conditional:
            # Unconditional direct branch: taken, target from BTB.
            return Prediction(taken=True, target=self.btb.lookup(pc))
        use_gshare = self.chooser.predict(pc)
        taken = (self.gshare.predict(pc) if use_gshare
                 else self.bimodal.predict(pc))
        target = self.btb.lookup(pc) if taken else None
        return Prediction(taken=taken, target=target, used_gshare=use_gshare)

    def update(self, inst, prediction):
        """Train on the resolved outcome; returns ``True`` if mispredicted."""
        pc = inst.pc
        actual_taken = inst.taken
        if inst.op.is_conditional:
            bim_correct = self.bimodal.predict(pc) == actual_taken
            gsh_correct = self.gshare.predict(pc) == actual_taken
            if bim_correct != gsh_correct:
                self.chooser.update(pc, taken=gsh_correct)
            self.bimodal.update(pc, actual_taken)
            self.gshare.update(pc, actual_taken)
        if actual_taken:
            self.btb.insert(pc, inst.target)
        mispredicted = (prediction.taken != actual_taken or
                        (actual_taken and prediction.target != inst.target))
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def accuracy(self):
        """Fraction of lookups that were fully correct."""
        if self.lookups == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.lookups
