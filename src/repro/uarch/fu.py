"""Functional unit pools with clock-gating and phantom-firing hooks.

Table 1's execution resources map onto five pools:

====================  =============================  ==================
Pool                  Handles                        Count (Table 1)
====================  =============================  ==================
``int_alu``           IALU, branch resolution        8
``int_mult``          IMULT, IDIV                    2
``fp_alu``            FALU                           4
``fp_mult``           FMULT, FDIV                    2
``mem_port``          LOAD, STORE address issue      4
====================  =============================  ==================

Each pool slot accepts a new operation every *interval* cycles (1 for
pipelined units, = latency for the divides).  The whole complex exposes
the two controls the paper's actuators use: **clock gating** (no new
issue; in-flight operations freeze, because their clocks stop) and
**phantom firing** (the pool reports full activity to the power model
while doing no architectural work).
"""

from repro.isa.opcodes import InstrClass

#: Pool name -> instruction classes it executes.
POOL_CLASSES = {
    "int_alu": (InstrClass.IALU, InstrClass.BRANCH, InstrClass.NOP),
    "int_mult": (InstrClass.IMULT, InstrClass.IDIV),
    "fp_alu": (InstrClass.FALU,),
    "fp_mult": (InstrClass.FMULT, InstrClass.FDIV),
    "mem_port": (InstrClass.LOAD, InstrClass.STORE),
}

#: Instruction class -> pool name (inverse of POOL_CLASSES).
CLASS_POOL = {c: pool for pool, classes in POOL_CLASSES.items()
              for c in classes}


class FuPool:
    """One pool of identical functional units.

    Issue bookkeeping uses per-slot cool-down counters: slot ``i`` can
    accept an operation when ``cooldown[i] == 0``; issuing an operation
    with issue interval ``k`` sets it to ``k``.  Counters tick down only
    on ungated cycles, so gating freezes occupancy exactly as stopping
    the unit clocks would.
    """

    __slots__ = ("name", "count", "cooldown", "issued_this_cycle", "busy")

    def __init__(self, name, count):
        if count <= 0:
            raise ValueError("pool %r needs at least one unit" % name)
        self.name = name
        self.count = count
        self.cooldown = [0] * count
        self.issued_this_cycle = 0
        self.busy = 0  # slots occupied (for activity reporting)

    def try_issue(self, interval):
        """Claim a free slot for ``interval`` cycles; True on success."""
        cooldown = self.cooldown
        for i, c in enumerate(cooldown):
            if c == 0:
                cooldown[i] = interval
                self.issued_this_cycle += 1
                return True
        return False

    def tick(self):
        """Advance one (ungated) cycle."""
        cooldown = self.cooldown
        if not any(cooldown):
            # Fully drained pool: nothing to decrement.  Low-IPC
            # (memory-bound) phases keep most pools here most cycles,
            # and any() rejects the common case at C speed.
            self.busy = 0
            self.issued_this_cycle = 0
            return
        busy = 0
        for i, c in enumerate(cooldown):
            if c > 0:
                cooldown[i] = c - 1
                busy += 1
        self.busy = busy
        self.issued_this_cycle = 0

    @property
    def free_slots(self):
        """Units in this pool able to accept an operation now."""
        return sum(1 for c in self.cooldown if c == 0)


class FuComplex:
    """All pools plus the gating/phantom state the actuators drive."""

    def __init__(self, config):
        self.pools = {
            "int_alu": FuPool("int_alu", config.n_int_alu),
            "int_mult": FuPool("int_mult", config.n_int_mult),
            "fp_alu": FuPool("fp_alu", config.n_fp_alu),
            "fp_mult": FuPool("fp_mult", config.n_fp_mult),
            "mem_port": FuPool("mem_port", config.n_mem_ports),
        }
        # Ticked every cycle; a tuple iterates faster than dict.values().
        self._pool_list = tuple(self.pools.values())
        self.intervals = config.intervals
        #: When True, no pool accepts new operations and in-flight
        #: execution freezes (the actuator's "voltage low" response).
        self.gated = False
        #: When True, the power model charges every pool at full activity
        #: (the actuator's "voltage high" phantom firing).
        self.phantom = False

    def pool_for(self, iclass):
        """The pool that executes instruction class ``iclass``."""
        return self.pools[CLASS_POOL[iclass]]

    def try_issue(self, iclass):
        """Attempt to start an operation of class ``iclass`` this cycle."""
        if self.gated:
            return False
        return self.pool_for(iclass).try_issue(self.intervals[iclass])

    def tick(self):
        """Advance all pools one cycle (no-op while gated: clocks stopped)."""
        if self.gated:
            return
        # Inlined FuPool.tick: this runs for all five pools every
        # simulated cycle, and the per-pool method call costs as much
        # as the drained-pool check itself.
        for pool in self._pool_list:
            cooldown = pool.cooldown
            if not any(cooldown):
                pool.busy = 0
                pool.issued_this_cycle = 0
                continue
            busy = 0
            for i, c in enumerate(cooldown):
                if c > 0:
                    cooldown[i] = c - 1
                    busy += 1
            pool.busy = busy
            pool.issued_this_cycle = 0

    def issue_counts(self):
        """Pool name -> operations issued this cycle (before tick)."""
        return {name: pool.issued_this_cycle
                for name, pool in self.pools.items()}

    @property
    def total_units(self):
        """Total functional units across all pools."""
        return sum(pool.count for pool in self.pools.values())
