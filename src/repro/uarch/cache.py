"""Set-associative caches and the Table 1 memory hierarchy.

The model is latency-oriented: an access returns the total load-to-use
latency it would incur and updates tag/LRU state.  Misses are non-blocking
from the pipeline's perspective (the core schedules completion at
``now + latency``); bandwidth contention below L1 is not modeled, which
is the standard early-stage simplification and matches how the paper's
current traces are shaped (miss *idleness*, not DRAM scheduling, drives
the dI/dt behaviour).
"""


class Cache:
    """One set-associative cache level with LRU replacement.

    Attributes:
        name: label used in stats.
        hit_latency: cycles for a hit at this level.
        accesses, misses: counters.
    """

    #: When a :class:`~repro.core.snapshot.MachineSnapshot` is active,
    #: a dict journaling the pre-mutation ways list of every set the
    #: speculated chunk touches (``set_index -> list of tags``); a
    #: rollback writes the saved lists back.  First-touch journaling is
    #: orders of magnitude cheaper than copying every set up front --
    #: a chunk touches a handful of sets, the L2 has thousands.
    _log = None

    def __init__(self, name, size, assoc, line_size, hit_latency):
        if size <= 0 or assoc <= 0 or line_size <= 0:
            raise ValueError("cache dimensions must be positive")
        n_lines = size // line_size
        if n_lines % assoc != 0:
            raise ValueError("size/line_size must be divisible by assoc")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = n_lines // assoc
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("set count must be a power of two (got %d)"
                             % self.n_sets)
        self.hit_latency = hit_latency
        self.offset_bits = line_size.bit_length() - 1
        self.set_mask = self.n_sets - 1
        # sets[i] is a list of tags in LRU order (front = MRU).
        self.sets = [[] for _ in range(self.n_sets)]
        self.accesses = 0
        self.misses = 0

    def lookup(self, addr):
        """Access the cache; returns ``True`` on hit.  Updates LRU/fills."""
        self.accesses += 1
        set_index = (addr >> self.offset_bits) & self.set_mask
        tag = addr >> self.offset_bits
        ways = self.sets[set_index]
        log = self._log
        if log is not None and set_index not in log:
            log[set_index] = list(ways)
        for i, t in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
        return False

    def contains(self, addr):
        """Tag check with no side effects (no LRU update, no fill)."""
        set_index = (addr >> self.offset_bits) & self.set_mask
        tag = addr >> self.offset_bits
        return tag in self.sets[set_index]

    def line_of(self, addr):
        """Line-aligned address containing ``addr``."""
        return addr >> self.offset_bits << self.offset_bits

    @property
    def miss_rate(self):
        """Misses divided by accesses (0.0 when untouched)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self):
        self.accesses = 0
        self.misses = 0


class AccessResult:
    """Latency and per-level hit record of one hierarchy access."""

    __slots__ = ("latency", "l1_hit", "l2_hit")

    def __init__(self, latency, l1_hit, l2_hit):
        self.latency = latency
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit


class MemoryHierarchy:
    """Split L1s over a unified L2 over fixed-latency main memory."""

    def __init__(self, config):
        self.config = config
        self.l1d = Cache("l1d", config.l1d_size, config.l1d_assoc,
                         config.line_size, config.l1d_latency)
        self.l1i = Cache("l1i", config.l1i_size, config.l1i_assoc,
                         config.line_size, config.l1i_latency)
        self.l2 = Cache("l2", config.l2_size, config.l2_assoc,
                        config.line_size, config.l2_latency)
        self.memory_latency = config.memory_latency
        self.memory_accesses = 0

    def _access(self, l1, addr):
        if l1.lookup(addr):
            return AccessResult(l1.hit_latency, True, False)
        if self.l2.lookup(addr):
            return AccessResult(l1.hit_latency + self.l2.hit_latency,
                                False, True)
        self.memory_accesses += 1
        latency = l1.hit_latency + self.l2.hit_latency + self.memory_latency
        return AccessResult(latency, False, False)

    def data_access(self, addr):
        """A load or store data access; returns an :class:`AccessResult`."""
        return self._access(self.l1d, addr)

    def inst_access(self, pc):
        """An instruction fetch access; returns an :class:`AccessResult`."""
        return self._access(self.l1i, pc)

    def reset_stats(self):
        self.l1d.reset_stats()
        self.l1i.reset_stats()
        self.l2.reset_stats()
        self.memory_accesses = 0
