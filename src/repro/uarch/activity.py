"""Per-cycle microarchitectural activity record.

The power model (:mod:`repro.power`) is structural, in the Wattch style:
every cycle it converts the counts in this record -- how many
instructions were fetched, how many operations each functional unit pool
started, how many cache and register-file accesses occurred -- into a
power figure.  The cycle simulator fills one :class:`CycleActivity` per
cycle and hands it over; the record also carries the gating/phantom
state so conditional clocking can be applied.
"""


class CycleActivity:
    """Counts of microarchitectural events in one clock cycle."""

    __slots__ = (
        "cycle",
        # Front end.
        "fetched", "l1i_accesses", "bpred_lookups", "decoded",
        # Window.
        "dispatched", "ruu_occupancy", "lsq_occupancy",
        # Issue/execute: operations *started* this cycle per pool.
        "issued_int_alu", "issued_int_mult", "issued_fp_alu",
        "issued_fp_mult", "issued_mem_port",
        # Execute: slots busy this cycle per pool (multi-cycle ops).
        "busy_int_alu", "busy_int_mult", "busy_fp_alu", "busy_fp_mult",
        "busy_mem_port",
        # Memory.
        "l1d_accesses", "l2_accesses", "memory_accesses",
        # Back end.
        "writebacks", "committed", "regfile_reads", "regfile_writes",
        # Actuator state visible to the power model.
        "fu_gated", "fu_phantom", "dl1_gated", "dl1_phantom",
        "il1_gated", "il1_phantom",
    )

    def __init__(self):
        self.reset(0)

    def reset(self, cycle):
        """Zero all counters for a new cycle."""
        self.cycle = cycle
        self.fetched = 0
        self.l1i_accesses = 0
        self.bpred_lookups = 0
        self.decoded = 0
        self.dispatched = 0
        self.ruu_occupancy = 0
        self.lsq_occupancy = 0
        self.issued_int_alu = 0
        self.issued_int_mult = 0
        self.issued_fp_alu = 0
        self.issued_fp_mult = 0
        self.issued_mem_port = 0
        self.busy_int_alu = 0
        self.busy_int_mult = 0
        self.busy_fp_alu = 0
        self.busy_fp_mult = 0
        self.busy_mem_port = 0
        self.l1d_accesses = 0
        self.l2_accesses = 0
        self.memory_accesses = 0
        self.writebacks = 0
        self.committed = 0
        self.regfile_reads = 0
        self.regfile_writes = 0
        self.fu_gated = False
        self.fu_phantom = False
        self.dl1_gated = False
        self.dl1_phantom = False
        self.il1_gated = False
        self.il1_phantom = False

    def reset_counters(self, cycle):
        """Zero the incremental event counters for a new cycle.

        The per-cycle hot path in :meth:`~repro.uarch.core.Machine.step`
        uses this instead of :meth:`reset`: the occupancy, busy and
        gating/phantom fields are unconditionally overwritten by the
        stage loop every cycle, so only the counters the stages
        *accumulate into* need zeroing.
        """
        self.cycle = cycle
        self.fetched = 0
        self.l1i_accesses = 0
        self.bpred_lookups = 0
        self.decoded = 0
        self.dispatched = 0
        self.issued_int_alu = 0
        self.issued_int_mult = 0
        self.issued_fp_alu = 0
        self.issued_fp_mult = 0
        self.issued_mem_port = 0
        self.l1d_accesses = 0
        self.l2_accesses = 0
        self.memory_accesses = 0
        self.writebacks = 0
        self.committed = 0
        self.regfile_reads = 0
        self.regfile_writes = 0

    @property
    def issued_total(self):
        """Operations issued across all pools this cycle."""
        return (self.issued_int_alu + self.issued_int_mult +
                self.issued_fp_alu + self.issued_fp_mult +
                self.issued_mem_port)

    def snapshot(self):
        """A plain dict copy (for tests and traces)."""
        return {name: getattr(self, name) for name in self.__slots__}
