"""Cycle-level out-of-order processor model.

A from-scratch stand-in for the SimpleScalar/Wattch core the paper
simulates, configured per its Table 1: an 8-wide machine with a 256-entry
register update unit (RUU), a 128-entry load/store queue, a combined
bimodal/gshare branch predictor with BTB and return-address stack, split
64 KB L1 caches over a 2 MB L2 and 300-cycle memory, and the functional
unit mix (8 IntALU, 2 IntMult/Div, 4 FPALU, 2 FPMult/Div, 4 memory
ports).

The simulator is timing-accurate and value-free: it consumes the
:class:`~repro.isa.instruction.DynamicInst` stream of a workload
generator and reports, for every cycle, the microarchitectural activity
(:class:`~repro.uarch.activity.CycleActivity`) that the Wattch-style
power model converts into current.  Unit groups (functional units, L1
data cache, L1 instruction cache) expose clock-gating and phantom-firing
hooks, which is how the paper's dI/dt actuators take hold of the machine.
"""

from repro.uarch.config import MachineConfig
from repro.uarch.activity import CycleActivity
from repro.uarch.branch import CombinedPredictor
from repro.uarch.cache import Cache, MemoryHierarchy
from repro.uarch.fu import FuPool, FuComplex
from repro.uarch.core import Machine
from repro.uarch.stats import MachineStats

__all__ = [
    "MachineConfig",
    "CycleActivity",
    "CombinedPredictor",
    "Cache",
    "MemoryHierarchy",
    "FuPool",
    "FuComplex",
    "Machine",
    "MachineStats",
]
