"""The main cycle loop: an 8-wide out-of-order machine.

Pipeline shape (per cycle, evaluated back to front so that results flow
with one-cycle granularity)::

    commit <- execute/writeback <- issue <- dispatch <- fetch

* **fetch** pulls up to ``fetch_width`` instructions from the workload's
  dynamic stream, touching the I-cache per line and consulting the branch
  predictor.  Fetch breaks on predicted-taken branches, stalls on I-cache
  misses, and -- since only the correct path exists in the stream --
  models a misprediction as a fetch hole from the mispredicted fetch to
  ``resolution + branch_penalty`` (the super-pipelined refill the paper
  added to Wattch to get realistic current swings).
* **dispatch** renames register dependences through a producer table and
  claims RUU (and LSQ) entries.
* **issue** selects ready entries oldest-first up to ``issue_width``,
  subject to functional-unit slots, memory ordering, and the actuator's
  clock gates.
* **execute** counts down per-entry latency (frozen while the owning
  unit group is gated), wakes dependents on completion, and resolves
  branches.
* **commit** retires done entries in order; stores write the D-cache at
  commit.

The per-cycle product is a :class:`~repro.uarch.activity.CycleActivity`,
which the power model converts into amperes.
"""

import heapq
from collections import deque

from repro.isa.opcodes import InstrClass
from repro.uarch.activity import CycleActivity
from repro.uarch.branch import CombinedPredictor
from repro.uarch.cache import MemoryHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.fu import CLASS_POOL, FuComplex
from repro.uarch.stats import MachineStats

#: Instruction class -> the ``CycleActivity`` attribute its issue bumps
#: (precomputed so the issue path avoids per-issue string concatenation).
_ISSUED_ATTR = {c: "issued_" + pool for c, pool in CLASS_POOL.items()}
from repro.uarch.window import (
    LoadStoreQueue,
    RuuEntry,
    ST_DONE,
    ST_EXECUTING,
    ST_READY,
    ST_WAITING,
)

#: Sentinel for "fetch stalled until a branch resolves".
_STALL_FOREVER = float("inf")


class GatedUnit:
    """Clock-gating / phantom-firing state for a cache unit group."""

    __slots__ = ("name", "gated", "phantom")

    def __init__(self, name):
        self.name = name
        self.gated = False
        self.phantom = False


class Machine:
    """The out-of-order core.

    Args:
        config: a :class:`~repro.uarch.config.MachineConfig`.
        stream: iterable of :class:`~repro.isa.instruction.DynamicInst`
            in architectural order (from a sequencer or synthesizer).

    The actuation surface used by :mod:`repro.control`:

    * ``machine.fus.gated`` / ``machine.fus.phantom`` -- functional units
      (fixed and float pipelines; memory ports are not gated, matching
      the paper's FU actuator).
    * ``machine.dl1.gated`` / ``machine.dl1.phantom`` -- L1 data cache.
    * ``machine.il1.gated`` / ``machine.il1.phantom`` -- L1 instruction
      cache (gating it stalls fetch).
    """

    #: When a :class:`~repro.core.snapshot.MachineSnapshot` is active,
    #: a list journaling every instruction pulled from the stream (the
    #: stream itself cannot be rewound, so restore replays the journal).
    #: Class-level default keeps machines unpickled from older warm-up
    #: checkpoints working.
    _stream_log = None

    def __init__(self, config=None, stream=()):
        self.config = config or MachineConfig()
        self.hierarchy = MemoryHierarchy(self.config)
        self.predictor = CombinedPredictor(self.config)
        self.fus = FuComplex(self.config)
        self.dl1 = GatedUnit("dl1")
        self.il1 = GatedUnit("il1")
        self.activity = CycleActivity()
        self.stats = MachineStats()

        self._stream = iter(stream)
        self._stream_done = False
        self._next_inst = None
        self._fetch_queue = deque()  # (inst, prediction), program order
        self._ruu = deque()          # RuuEntry, program order
        self._lsq = LoadStoreQueue(self.config.lsq_size)
        self._producer = {}     # reg index -> producing RuuEntry
        self._ready = []        # heap of (seq, RuuEntry)
        self._executing = []    # RuuEntry currently in ST_EXECUTING
        self._store_waiters = {}  # blocking store RuuEntry -> parked loads
        self._dl1_parked = []   # loads/stores parked on a gated D-cache
        self._fetch_stall_until = 0
        self._last_fetch_line = None
        self._replay = []       # flushed instructions awaiting re-fetch
        self.cycle = 0

    # ------------------------------------------------------------------
    # Public driving interface
    # ------------------------------------------------------------------

    @property
    def done(self):
        """True once the stream is drained and the pipeline is empty."""
        # Checked every cycle by every run loop: test the in-flight
        # queues first so the stream peek (a function call plus cache
        # checks) only happens when the pipeline has actually drained.
        return (not self._ruu and not self._fetch_queue and
                self._peek_inst() is None)

    def step(self):
        """Simulate one clock cycle; returns the cycle's activity record."""
        activity = self.activity
        fus = self.fus
        activity.reset_counters(self.cycle)
        activity.fu_gated = fus.gated
        activity.fu_phantom = fus.phantom
        dl1 = self.dl1
        activity.dl1_gated = dl1.gated
        activity.dl1_phantom = dl1.phantom
        il1 = self.il1
        activity.il1_gated = il1.gated
        activity.il1_phantom = il1.phantom

        self._commit(activity)
        self._execute(activity)
        self._issue(activity)
        self._dispatch(activity)
        self._fetch(activity)
        fus.tick()

        p_ia, p_im, p_fa, p_fm, p_mp = fus._pool_list
        activity.busy_int_alu = p_ia.busy
        activity.busy_int_mult = p_im.busy
        activity.busy_fp_alu = p_fa.busy
        activity.busy_fp_mult = p_fm.busy
        activity.busy_mem_port = p_mp.busy
        activity.ruu_occupancy = len(self._ruu)
        activity.lsq_occupancy = len(self._lsq)

        self.stats.record_cycle(activity)
        self.cycle += 1
        return activity

    def stall_window(self):
        """Upper bound on consecutive pure-stall cycles from here.

        A *pure stall* cycle does no pipeline work: nothing fetches,
        dispatches, issues, completes, or commits, no unit is gated or
        phantom-firing, and the only state evolution is countdown
        timers (in-flight operation latencies, FU cooldowns).  Every
        such cycle produces a byte-identical activity record, so batch
        callers (the speculative collect loop) can run :meth:`step`
        once for the canonical record and cover the rest with
        :meth:`advance_stall`, replicating the record.

        Returns ``w >= 0``: the next ``w`` calls to :meth:`step` are
        guaranteed pure stalls with identical activity.  0 means the
        next cycle may do work and must be stepped normally.
        """
        fus = self.fus
        dl1 = self.dl1
        il1 = self.il1
        if (self._ready or self._dl1_parked or fus.gated or fus.phantom
                or dl1.gated or dl1.phantom or il1.gated or il1.phantom):
            return 0
        config = self.config
        cycle = self.cycle
        bound = None
        queue = self._fetch_queue
        if len(queue) < config.fetch_queue_size:
            until = self._fetch_stall_until
            if cycle >= until:
                return 0  # fetch would pull instructions
            if until != _STALL_FOREVER:
                bound = until - cycle
        ruu = self._ruu
        if queue and len(ruu) < config.ruu_size:
            iclass = queue[0][0].op.iclass
            if not ((iclass is InstrClass.LOAD or
                     iclass is InstrClass.STORE) and self._lsq.full):
                return 0  # dispatch would make progress
        if ruu and ruu[0].state == ST_DONE:
            return 0  # commit would retire
        # An in-flight operation completing (writeback, wakeups, branch
        # resolution) or a cooldown expiring (pool busy count changes)
        # ends the identical stretch one cycle early.
        for entry in self._executing:
            r = entry.remaining - 1
            if bound is None or r < bound:
                bound = r
        for pool in fus._pool_list:
            for c in pool.cooldown:
                if c:
                    c -= 1
                    if bound is None or c < bound:
                        bound = c
        if bound is None or bound <= 0:
            # Nothing bounds the stall (an empty machine waiting out a
            # fetch redirect is bounded above); don't batch.
            return 0
        return bound

    def advance_stall(self, n):
        """Batch-advance ``n`` cycles of a pure stall.

        Equivalent to ``n`` :meth:`step` calls from a state where
        :meth:`stall_window` returned at least ``n``, at O(in-flight)
        cost instead of O(n) full pipeline walks: only the countdown
        timers, the cycle counter, and the cycle-count statistic move
        during a pure stall.  The caller owns replicating the activity
        record :meth:`stall_window` promised identical.
        """
        for entry in self._executing:
            entry.remaining -= n
        for pool in self.fus._pool_list:
            cooldown = pool.cooldown
            for i, c in enumerate(cooldown):
                if c:
                    cooldown[i] = c - n
        self.stats.cycles += n
        self.cycle += n

    def fast_forward(self, n_instructions):
        """Functionally warm the machine on the next ``n`` instructions.

        The SimpleScalar-style fast-forward the paper relies on ("after
        skipping the first billion instructions"): consume instructions
        from the stream *without* cycle simulation, touching the caches,
        the branch predictor, the BTB, and the RAS so that a subsequent
        timed run starts from a warmed state.  Stats counters are left
        untouched (no cycles pass); cache counters are reset afterwards
        so miss rates reflect only the timed region.

        Returns the number of instructions actually consumed (less than
        ``n`` only if the stream ends).
        """
        line_mask = ~(self.config.line_size - 1)
        last_line = None
        consumed = 0
        while consumed < n_instructions:
            inst = self._peek_inst()
            if inst is None:
                break
            self._take_inst()
            line = inst.pc & line_mask
            if line != last_line:
                self.hierarchy.inst_access(inst.pc)
                last_line = line
            if inst.is_mem:
                self.hierarchy.data_access(inst.addr)
            if inst.is_branch:
                prediction = self.predictor.predict(inst)
                self.predictor.update(inst, prediction)
            consumed += 1
        self.hierarchy.reset_stats()
        self.predictor.lookups = 0
        self.predictor.mispredictions = 0
        return consumed

    def flush_pipeline(self):
        """Squash all in-flight work and re-fetch it (Section 6 recovery).

        The paper's default assumption is that actuation can freeze and
        resume in-flight execution; the alternative it sketches is to
        flush and replay.  This squashes every un-committed instruction
        (window, queues, executing operations) back into a replay buffer
        that fetch will drain before the main stream, and charges the
        front-end refill penalty.  Cache and predictor *state* survive
        (only pipeline registers are lost); the RAS may skew slightly on
        replayed calls/returns, as it does in real machines without RAS
        checkpointing.

        Returns the number of squashed instructions.
        """
        squashed = [entry.inst for entry in self._ruu]
        squashed.extend(inst for inst, _ in self._fetch_queue)
        if self._next_inst is not None:
            # The peeked-but-unfetched instruction follows everything
            # squashed in program order.
            squashed.append(self._next_inst)
            self._next_inst = None
        self._replay = squashed + self._replay
        self._ruu = deque()
        self._lsq = LoadStoreQueue(self.config.lsq_size)
        self._producer = {}
        self._ready = []
        self._executing = []
        self._store_waiters = {}
        self._dl1_parked = []
        self._fetch_queue = deque()
        self._last_fetch_line = None
        self._fetch_stall_until = self.cycle + self.config.branch_penalty
        self.stats.flushes += 1
        return len(squashed)

    def run(self, max_cycles=None, max_instructions=None, cycle_hook=None):
        """Run until done or a limit is hit.

        Args:
            max_cycles: stop after this many cycles.
            max_instructions: stop once this many instructions commit.
            cycle_hook: optional ``f(machine, activity)`` called per cycle
                (the closed-loop controller attaches here).

        Returns:
            The machine's :class:`~repro.uarch.stats.MachineStats`.
        """
        while not self.done:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if (max_instructions is not None and
                    self.stats.committed >= max_instructions):
                break
            activity = self.step()
            if cycle_hook is not None:
                cycle_hook(self, activity)
        return self.stats

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _commit(self, activity):
        width = self.config.commit_width
        ruu = self._ruu
        while width > 0 and ruu:
            entry = ruu[0]
            if entry.state != ST_DONE:
                break
            if entry.is_store:
                if self.dl1.gated:
                    break  # store commit needs the D-cache clock
                self._data_access(entry.inst.addr, activity)
            ruu.popleft()
            if entry.granule is not None:
                self._lsq.commit(entry)
            dest = entry.inst.dest
            if dest is not None and self._producer.get(dest) is entry:
                del self._producer[dest]
            activity.committed += 1
            self.stats.committed += 1
            width -= 1

    def _execute(self, activity):
        if not self._executing:
            return
        fu_gated = self.fus.gated
        still = []
        for entry in self._executing:
            # Memory operations (the only entries with a granule) keep
            # draining while the FU clocks are gated.
            frozen = fu_gated and entry.granule is None
            if not frozen:
                entry.remaining -= 1
            if entry.remaining > 0:
                still.append(entry)
                continue
            entry.state = ST_DONE
            activity.writebacks += 1
            if entry.inst.dest is not None:
                activity.regfile_writes += 1
            for waiter in entry.waiters:
                waiter.deps -= 1
                if waiter.deps == 0 and waiter.state == ST_WAITING:
                    waiter.state = ST_READY
                    heapq.heappush(self._ready, (waiter.seq, waiter))
            entry.waiters = []
            if entry.inst.is_branch:
                self._resolve_branch(entry)
        self._executing = still

    def _resolve_branch(self, entry):
        mispredicted = self.predictor.update(entry.inst, entry.prediction)
        if mispredicted:
            # Fetch has been waiting on this branch; restart after the
            # front-end refill penalty.
            self._fetch_stall_until = self.cycle + self.config.branch_penalty
            self.stats.mispredictions += 1

    # _try_issue_entry outcomes.
    _ISSUED = 0    # claimed an FU slot this cycle
    _DEFERRED = 1  # structurally blocked; stays in the ready heap
    _PARKED = 2    # waiting on an event (store issue / D-cache ungate)

    def _issue(self, activity):
        # Release event-parked memory operations first.
        if self._dl1_parked and not self.dl1.gated:
            for entry in self._dl1_parked:
                heapq.heappush(self._ready, (entry.seq, entry))
            self._dl1_parked = []
        width = self.config.issue_width
        # Bound the number of failed pops: structurally-blocked entries
        # burn issue attempts (replay slots), keeping the cycle cost and
        # the modeled issue bandwidth realistic.
        attempts = width + 8
        ready = self._ready
        deferred = []
        while width > 0 and attempts > 0 and ready:
            _, entry = heapq.heappop(ready)
            outcome = self._try_issue_entry(entry, activity)
            attempts -= 1
            if outcome == self._ISSUED:
                width -= 1
            elif outcome == self._DEFERRED:
                deferred.append(entry)
        for entry in deferred:
            heapq.heappush(ready, (entry.seq, entry))

    def _try_issue_entry(self, entry, activity):
        iclass = entry.iclass
        if iclass is InstrClass.LOAD:
            if self.dl1.gated:
                self._dl1_parked.append(entry)
                return self._PARKED
            blocker = self._lsq.blocking_store(entry)
            if blocker is not None:
                self._store_waiters.setdefault(blocker, []).append(entry)
                return self._PARKED
            if not self.fus.try_issue(iclass):
                return self._DEFERRED
            if self._lsq.load_forwards(entry):
                latency = self.config.l1d_latency  # store-to-load forward
            else:
                latency = self._data_access(entry.inst.addr, activity)
            entry.remaining = latency
        elif iclass is InstrClass.STORE:
            if self.dl1.gated:
                self._dl1_parked.append(entry)
                return self._PARKED
            if not self.fus.try_issue(iclass):
                return self._DEFERRED
            entry.remaining = self.config.latencies[iclass]
            for waiter in self._store_waiters.pop(entry, ()):
                heapq.heappush(self._ready, (waiter.seq, waiter))
        else:
            if not self.fus.try_issue(iclass):
                return self._DEFERRED
            entry.remaining = self.config.latencies[iclass]
        entry.state = ST_EXECUTING
        self._executing.append(entry)
        activity.regfile_reads += len(entry.inst.srcs)
        attr = _ISSUED_ATTR[iclass]
        setattr(activity, attr, getattr(activity, attr) + 1)
        return self._ISSUED

    def _dispatch(self, activity):
        width = self.config.decode_width
        queue = self._fetch_queue
        while width > 0 and queue:
            inst, prediction = queue[0]
            if len(self._ruu) >= self.config.ruu_size:
                break
            iclass = inst.op.iclass
            is_mem = (iclass is InstrClass.LOAD or
                      iclass is InstrClass.STORE)
            if is_mem and self._lsq.full:
                break
            queue.popleft()
            entry = RuuEntry(inst, prediction=prediction)
            if prediction is not None:
                entry.mispredicted = (
                    prediction.taken != inst.taken or
                    (inst.taken and prediction.target != inst.target))
            for src in inst.srcs:
                producer = self._producer.get(src)
                if producer is not None and producer.state != ST_DONE:
                    producer.waiters.append(entry)
                    entry.deps += 1
            if inst.dest is not None:
                self._producer[inst.dest] = entry
            self._ruu.append(entry)
            if is_mem:
                self._lsq.dispatch(entry)
            if entry.deps == 0:
                entry.state = ST_READY
                heapq.heappush(self._ready, (entry.seq, entry))
            activity.dispatched += 1
            activity.decoded += 1
            width -= 1

    def _fetch(self, activity):
        if self.il1.gated or self.cycle < self._fetch_stall_until:
            if (self.config.model_wrong_path and not self.il1.gated and
                    self._fetch_stall_until == _STALL_FOREVER):
                # The real front end chases the wrong path while the
                # mispredicted branch resolves; charge that activity to
                # the power model (no architectural effect).
                activity.l1i_accesses += 1
                activity.bpred_lookups += 1
                activity.decoded += self.config.decode_width
            return
        width = self.config.fetch_width
        queue = self._fetch_queue
        line_mask = ~(self.config.line_size - 1)
        while width > 0 and len(queue) < self.config.fetch_queue_size:
            inst = self._peek_inst()
            if inst is None:
                return
            line = inst.pc & line_mask
            if line != self._last_fetch_line:
                result = self.hierarchy.inst_access(inst.pc)
                activity.l1i_accesses += 1
                if not result.l1_hit:
                    activity.l2_accesses += 1
                    if not result.l2_hit:
                        activity.memory_accesses += 1
                self._last_fetch_line = line
                if result.latency > self.config.l1i_latency:
                    # I-cache miss: this fetch group stops here and fetch
                    # resumes once the line arrives.
                    self._fetch_stall_until = self.cycle + result.latency
                    return
            self._take_inst()
            prediction = None
            if inst.is_branch:
                activity.bpred_lookups += 1
                prediction = self.predictor.predict(inst)
                mispredicted = (
                    prediction.taken != inst.taken or
                    (inst.taken and prediction.target != inst.target))
                queue.append((inst, prediction))
                activity.fetched += 1
                self.stats.fetched += 1
                width -= 1
                if mispredicted:
                    # Only the correct path exists in the stream; park
                    # fetch until the branch resolves and sets the refill
                    # deadline in _resolve_branch.
                    self._fetch_stall_until = _STALL_FOREVER
                    return
                if prediction.taken:
                    self._last_fetch_line = None  # redirect breaks the line
                    return  # taken branches end the fetch group
                continue
            queue.append((inst, None))
            activity.fetched += 1
            self.stats.fetched += 1
            width -= 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _peek_inst(self):
        if self._next_inst is None and self._replay:
            self._next_inst = self._replay.pop(0)
        if self._next_inst is None and not self._stream_done:
            try:
                self._next_inst = next(self._stream)
            except StopIteration:
                self._stream_done = True
            else:
                if self._stream_log is not None:
                    self._stream_log.append(self._next_inst)
        return self._next_inst

    def _take_inst(self):
        inst = self._next_inst
        self._next_inst = None
        return inst

    def _data_access(self, addr, activity):
        result = self.hierarchy.data_access(addr)
        activity.l1d_accesses += 1
        if not result.l1_hit:
            activity.l2_accesses += 1
            if not result.l2_hit:
                activity.memory_accesses += 1
        return result.latency
