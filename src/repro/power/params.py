"""Per-structure maximum power figures.

The budget below describes a 3 GHz, 1.0 V, 8-wide out-of-order processor
-- Wattch's Alpha-like breakdown scaled with the ITRS factors the paper
cites (Section 3.1).  Absolute watts matter less than the *shape*: which
structures dominate, what fraction of total power the actuator's unit
groups control, and how far apart the minimum and maximum power levels
sit (that distance is the worst-case dI/dt the network must survive).

Structure names here are a contract with
:class:`repro.power.model.PowerModel`, which knows how to derive each
structure's per-cycle activity fraction from a
:class:`~repro.uarch.activity.CycleActivity`.
"""

from dataclasses import dataclass, field

#: Maximum power (watts) of each conditionally-clocked structure at
#: 3 GHz / 1.0 V.  Totals ~52.5 W on top of ~12 W of ungated base power.
STRUCTURES = {
    # Front end.
    "l1i": 5.0,        # instruction cache
    "bpred": 2.0,      # predictor tables + BTB + RAS
    "decode": 3.5,     # decode/rename
    # Window.
    "ruu": 10.5,       # wakeup + select + RUU array
    "lsq": 3.5,
    "regfile": 4.5,
    # Execution (the actuator's "FU" group).
    "int_alu": 3.5,
    "int_mult": 1.5,
    "fp_alu": 3.0,
    "fp_mult": 2.5,
    # Memory.
    "l1d": 8.0,        # data cache
    "l2": 3.0,
    "memctl": 1.0,     # memory controller / pins
    # Result distribution.
    "resultbus": 3.0,
}

#: Structures the paper's FU actuator gates or phantom-fires.
FU_GROUP = ("int_alu", "int_mult", "fp_alu", "fp_mult")

#: Structure gated with the L1 data cache.
DL1_GROUP = ("l1d",)

#: Structure gated with the L1 instruction cache.
IL1_GROUP = ("l1i",)


@dataclass
class PowerParams:
    """Knobs of the power model.

    Attributes:
        vdd: nominal supply voltage (current = power / vdd).
        structures: structure -> max watts; defaults to :data:`STRUCTURES`.
        clock_power: ungateable global clock-tree power, watts.
        static_power: leakage and always-on logic, watts.
        idle_factor: fraction of max an idle (conditionally clocked but
            not actuator-gated) structure dissipates -- Wattch's
            aggressive-gating style leaves residual clock load.
        gated_factor: fraction of max an actuator-gated structure
            dissipates (clock stopped; leakage remains).
        spread_multicycle: spread a multi-cycle operation's energy over
            its occupancy (the paper's Wattch fix).  When False, the
            whole energy is charged in the issue cycle, overestimating
            current swings.
    """

    vdd: float = 1.0
    structures: dict = field(default_factory=lambda: dict(STRUCTURES))
    clock_power: float = 8.0
    static_power: float = 4.0
    idle_factor: float = 0.10
    gated_factor: float = 0.02
    spread_multicycle: bool = True

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if not 0.0 <= self.gated_factor <= self.idle_factor <= 1.0:
            raise ValueError(
                "need 0 <= gated_factor <= idle_factor <= 1, got %r / %r"
                % (self.gated_factor, self.idle_factor))
        for name, watts in self.structures.items():
            if watts < 0:
                raise ValueError("structure %r has negative power" % name)

    @property
    def total_structure_power(self):
        """Sum of all conditionally-clocked maxima, watts."""
        return sum(self.structures.values())

    @property
    def base_power(self):
        """Ungateable power (clock tree + static), watts."""
        return self.clock_power + self.static_power
