"""Activity -> power conversion.

Every cycle, :meth:`PowerModel.power` maps the simulator's
:class:`~repro.uarch.activity.CycleActivity` to watts:

``P = base + sum_s max_s * fraction_s``

where ``fraction_s`` is the structure's utilization this cycle, floored
at the idle factor (conditional clocking), forced to the gated factor if
the actuator has stopped the structure's clock, and forced to 1.0 if the
actuator is phantom-firing it.
"""

from repro.isa.opcodes import InstrClass
from repro.power.params import DL1_GROUP, FU_GROUP, IL1_GROUP, PowerParams


class PowerModel:
    """Structural power model bound to a machine configuration.

    Args:
        config: the :class:`~repro.uarch.config.MachineConfig` whose
            widths normalize activity fractions.
        params: a :class:`~repro.power.params.PowerParams`; defaults to
            the canonical 3 GHz / 1.0 V budget.
    """

    def __init__(self, config, params=None):
        self.config = config
        self.params = params or PowerParams()
        self._pool_counts = {
            "int_alu": config.n_int_alu,
            "int_mult": config.n_int_mult,
            "fp_alu": config.n_fp_alu,
            "fp_mult": config.n_fp_mult,
        }
        # Representative latency per pool for the no-spreading mode (the
        # energy of an op charged entirely at issue).
        self._pool_issue_energy_cycles = {
            "int_alu": config.latencies[InstrClass.IALU],
            "int_mult": config.latencies[InstrClass.IMULT],
            "fp_alu": config.latencies[InstrClass.FALU],
            "fp_mult": config.latencies[InstrClass.FMULT],
        }

    # ------------------------------------------------------------------
    # Per-cycle conversion
    # ------------------------------------------------------------------

    def fractions(self, activity):
        """Structure -> raw utilization fraction for one cycle.

        Fractions may exceed 1.0 in the no-spreading mode (that is the
        point of the paper's spreading fix); they are not clamped.
        """
        cfg = self.config
        out = {}
        out["l1i"] = 1.0 if activity.l1i_accesses else 0.0
        out["bpred"] = min(1.0, activity.bpred_lookups / 2.0)
        out["decode"] = min(1.0, activity.decoded / cfg.decode_width)
        # RUU: dispatch writes, issue selects, writebacks wake up.
        out["ruu"] = min(1.0, (activity.dispatched + activity.issued_total +
                               activity.writebacks) / (3.0 * cfg.issue_width))
        out["lsq"] = min(1.0, activity.issued_mem_port / cfg.n_mem_ports)
        out["regfile"] = min(1.0, (activity.regfile_reads +
                                   activity.regfile_writes)
                             / (3.0 * cfg.issue_width))
        if self.params.spread_multicycle:
            out["int_alu"] = activity.busy_int_alu / cfg.n_int_alu
            out["int_mult"] = activity.busy_int_mult / cfg.n_int_mult
            out["fp_alu"] = activity.busy_fp_alu / cfg.n_fp_alu
            out["fp_mult"] = activity.busy_fp_mult / cfg.n_fp_mult
        else:
            e = self._pool_issue_energy_cycles
            out["int_alu"] = (activity.issued_int_alu * e["int_alu"]
                              / cfg.n_int_alu)
            out["int_mult"] = (activity.issued_int_mult * e["int_mult"]
                               / cfg.n_int_mult)
            out["fp_alu"] = (activity.issued_fp_alu * e["fp_alu"]
                             / cfg.n_fp_alu)
            out["fp_mult"] = (activity.issued_fp_mult * e["fp_mult"]
                              / cfg.n_fp_mult)
        out["l1d"] = min(1.0, activity.l1d_accesses / cfg.n_mem_ports)
        out["l2"] = 1.0 if activity.l2_accesses else 0.0
        out["memctl"] = 1.0 if activity.memory_accesses else 0.0
        out["resultbus"] = min(1.0, activity.writebacks / cfg.issue_width)
        return out

    def breakdown(self, activity):
        """Structure -> watts for one cycle (plus ``"base"``)."""
        params = self.params
        fractions = self.fractions(activity)
        gated = set()
        phantom = set()
        if activity.fu_gated:
            gated.update(FU_GROUP)
        if activity.fu_phantom:
            phantom.update(FU_GROUP)
        if activity.dl1_gated:
            gated.update(DL1_GROUP)
        if activity.dl1_phantom:
            phantom.update(DL1_GROUP)
        if activity.il1_gated:
            gated.update(IL1_GROUP)
        if activity.il1_phantom:
            phantom.update(IL1_GROUP)
        out = {"base": params.base_power}
        for name, max_watts in params.structures.items():
            if name in phantom:
                fraction = 1.0
            elif name in gated:
                fraction = params.gated_factor
            else:
                fraction = max(fractions.get(name, 0.0), params.idle_factor)
            out[name] = max_watts * fraction
        return out

    def power(self, activity):
        """Total watts this cycle.

        Fused equivalent of ``sum(breakdown(activity).values())`` --
        the closed loop calls this every cycle, so it avoids building
        the per-structure dictionaries (kept exactly in sync by the
        ``test_breakdown_sums_to_power`` regression test).
        """
        params = self.params
        s = params.structures
        idle = params.idle_factor
        gated = params.gated_factor
        cfg = self.config
        total = params.base_power

        def contrib(watts, fraction):
            return watts * (fraction if fraction > idle else idle)

        # FU group.
        if activity.fu_phantom:
            total += s["int_alu"] + s["int_mult"] + s["fp_alu"] + s["fp_mult"]
        elif activity.fu_gated:
            total += (s["int_alu"] + s["int_mult"] + s["fp_alu"]
                      + s["fp_mult"]) * gated
        elif params.spread_multicycle:
            total += contrib(s["int_alu"],
                             activity.busy_int_alu / cfg.n_int_alu)
            total += contrib(s["int_mult"],
                             activity.busy_int_mult / cfg.n_int_mult)
            total += contrib(s["fp_alu"], activity.busy_fp_alu / cfg.n_fp_alu)
            total += contrib(s["fp_mult"],
                             activity.busy_fp_mult / cfg.n_fp_mult)
        else:
            e = self._pool_issue_energy_cycles
            total += contrib(s["int_alu"], activity.issued_int_alu
                             * e["int_alu"] / cfg.n_int_alu)
            total += contrib(s["int_mult"], activity.issued_int_mult
                             * e["int_mult"] / cfg.n_int_mult)
            total += contrib(s["fp_alu"], activity.issued_fp_alu
                             * e["fp_alu"] / cfg.n_fp_alu)
            total += contrib(s["fp_mult"], activity.issued_fp_mult
                             * e["fp_mult"] / cfg.n_fp_mult)

        # Caches under actuator control.
        if activity.dl1_phantom:
            total += s["l1d"]
        elif activity.dl1_gated:
            total += s["l1d"] * gated
        else:
            total += contrib(s["l1d"], min(1.0, activity.l1d_accesses
                                           / cfg.n_mem_ports))
        if activity.il1_phantom:
            total += s["l1i"]
        elif activity.il1_gated:
            total += s["l1i"] * gated
        else:
            total += contrib(s["l1i"], 1.0 if activity.l1i_accesses else 0.0)

        # Everything else.
        total += contrib(s["bpred"], min(1.0, activity.bpred_lookups / 2.0))
        total += contrib(s["decode"],
                         min(1.0, activity.decoded / cfg.decode_width))
        total += contrib(s["ruu"], min(1.0, (activity.dispatched
                                             + activity.issued_total
                                             + activity.writebacks)
                                       / (3.0 * cfg.issue_width)))
        total += contrib(s["lsq"], min(1.0, activity.issued_mem_port
                                       / cfg.n_mem_ports))
        total += contrib(s["regfile"], min(1.0, (activity.regfile_reads
                                                 + activity.regfile_writes)
                                           / (3.0 * cfg.issue_width)))
        total += contrib(s["l2"], 1.0 if activity.l2_accesses else 0.0)
        total += contrib(s["memctl"],
                         1.0 if activity.memory_accesses else 0.0)
        total += contrib(s["resultbus"], min(1.0, activity.writebacks
                                             / cfg.issue_width))
        return total

    def current(self, activity):
        """Total amperes this cycle (``P / Vdd``)."""
        return self.power(activity) / self.params.vdd

    # ------------------------------------------------------------------
    # Design-level envelope (used by the threshold solver)
    # ------------------------------------------------------------------

    def max_power(self):
        """Every structure at full tilt, watts."""
        return self.params.base_power + self.params.total_structure_power

    def min_power(self):
        """Everything idle under conditional clocking (no actuation)."""
        return (self.params.base_power +
                self.params.idle_factor * self.params.total_structure_power)

    def gated_min_power(self):
        """Idle machine with all actuator groups clock-gated."""
        params = self.params
        actuated = set(FU_GROUP) | set(DL1_GROUP) | set(IL1_GROUP)
        total = params.base_power
        for name, watts in params.structures.items():
            factor = (params.gated_factor if name in actuated
                      else params.idle_factor)
            total += watts * factor
        return total

    def current_envelope(self):
        """``(i_min, i_max)`` in amperes: the worst-case swing the PDN
        must be designed against (minimum-power idle to maximum-power
        burst)."""
        return (self.min_power() / self.params.vdd,
                self.max_power() / self.params.vdd)

    #: Activity level assumed for structures that keep running while a
    #: voltage-low response is active (they are not at max -- commit has
    #: stalled -- but they are far from idle).
    BYSTANDER_ACTIVITY = 0.55

    def response_envelope(self, groups=("fu", "dl1", "il1")):
        """Currents an actuator over ``groups`` can force, amperes.

        Returns ``(i_reduce, i_boost)``:

        * ``i_reduce`` -- the worst-case (highest) current while the
          actuated groups are clock-gated.  Gating a group does *not*
          quiesce the rest of the machine: with only the FUs gated, the
          front end keeps fetching into the window and the memory ports
          keep issuing, so those bystander structures are charged at
          :data:`BYSTANDER_ACTIVITY`; adding DL1 stops the memory path;
          only adding IL1 stalls fetch and lets everything idle.  This
          is why the FU-only lever is weak -- the paper's finding that
          FU-only control "does not have the necessary leverage" and
          destabilizes at larger delays.
        * ``i_boost`` -- the pessimistic (lowest) current a voltage-high
          response can force: the actuated groups phantom-fired at full
          power with everything else idle.
        """
        from repro.power.params import DL1_GROUP, FU_GROUP, IL1_GROUP
        group_structures = {"fu": FU_GROUP, "dl1": DL1_GROUP,
                            "il1": IL1_GROUP}
        actuated = set()
        for g in groups:
            if g not in group_structures:
                raise ValueError("unknown actuator group %r" % g)
            actuated.update(group_structures[g])
        # Which structures keep running while the reduce response holds.
        front_end = {"l1i", "bpred", "decode", "ruu"}
        memory_path = {"lsq", "l1d", "l2", "memctl", "regfile", "resultbus"}
        if "il1" in groups:
            bystanders = set()
        elif "dl1" in groups:
            bystanders = front_end - set(IL1_GROUP)
        else:
            bystanders = (front_end | memory_path) - actuated
        params = self.params
        reduce_power = params.base_power
        boost_power = params.base_power
        for name, watts in params.structures.items():
            if name in actuated:
                reduce_power += watts * params.gated_factor
                boost_power += watts
            elif name in bystanders:
                reduce_power += watts * self.BYSTANDER_ACTIVITY
                boost_power += watts * params.idle_factor
            else:
                reduce_power += watts * params.idle_factor
                boost_power += watts * params.idle_factor
        return (reduce_power / params.vdd, boost_power / params.vdd)
