"""Activity -> power conversion.

Every cycle, :meth:`PowerModel.power` maps the simulator's
:class:`~repro.uarch.activity.CycleActivity` to watts:

``P = base + sum_s max_s * fraction_s``

where ``fraction_s`` is the structure's utilization this cycle, floored
at the idle factor (conditional clocking), forced to the gated factor if
the actuator has stopped the structure's clock, and forced to 1.0 if the
actuator is phantom-firing it.
"""

import numpy as np

from repro.isa.opcodes import InstrClass
from repro.power.params import DL1_GROUP, FU_GROUP, IL1_GROUP, PowerParams


class PowerModel:
    """Structural power model bound to a machine configuration.

    Args:
        config: the :class:`~repro.uarch.config.MachineConfig` whose
            widths normalize activity fractions.
        params: a :class:`~repro.power.params.PowerParams`; defaults to
            the canonical 3 GHz / 1.0 V budget.
    """

    def __init__(self, config, params=None):
        self.config = config
        self.params = params or PowerParams()
        self._pool_counts = {
            "int_alu": config.n_int_alu,
            "int_mult": config.n_int_mult,
            "fp_alu": config.n_fp_alu,
            "fp_mult": config.n_fp_mult,
        }
        # Representative latency per pool for the no-spreading mode (the
        # energy of an op charged entirely at issue).
        self._pool_issue_energy_cycles = {
            "int_alu": config.latencies[InstrClass.IALU],
            "int_mult": config.latencies[InstrClass.IMULT],
            "fp_alu": config.latencies[InstrClass.FALU],
            "fp_mult": config.latencies[InstrClass.FMULT],
        }
        # Per-unit weights and denominators hoisted out of the per-cycle
        # :meth:`power` path (params and config are fixed at construction;
        # mutating them afterwards is unsupported -- build a new model).
        params = self.params
        st = params.structures
        self._base = params.base_power
        self._idle = params.idle_factor
        self._gatedf = params.gated_factor
        self._spread = params.spread_multicycle
        self._fu_lump = (st["int_alu"] + st["int_mult"] + st["fp_alu"]
                         + st["fp_mult"])
        self._w_fu = (st["int_alu"], st["int_mult"], st["fp_alu"],
                      st["fp_mult"])
        self._n_fu = (config.n_int_alu, config.n_int_mult,
                      config.n_fp_alu, config.n_fp_mult)
        e = self._pool_issue_energy_cycles
        self._e_fu = (e["int_alu"], e["int_mult"], e["fp_alu"],
                      e["fp_mult"])
        self._w_misc = (st["l1d"], st["l1i"], st["bpred"], st["decode"],
                        st["ruu"], st["lsq"], st["regfile"], st["l2"],
                        st["memctl"], st["resultbus"])
        self._ruu_denom = 3.0 * config.issue_width
        self._n_mem_ports = config.n_mem_ports
        self._decode_width = config.decode_width
        self._issue_width = config.issue_width
        # Column vectors for :meth:`power_batch`'s matrix form.  Each
        # (rows, 1) vector broadcasts over a (rows, n_cycles) stack so a
        # single vector operation covers every structure of one shape;
        # the arithmetic applied to each element is unchanged.
        (w_l1d, w_l1i, w_bp, w_dec, w_ruu, w_lsq, w_rf, w_l2, w_mc,
         w_rb) = self._w_misc
        self._batch_fu_w = np.array(self._w_fu, dtype=float).reshape(4, 1)
        self._batch_fu_div = np.array(self._n_fu, dtype=float).reshape(4, 1)
        self._batch_fu_e = np.array(self._e_fu, dtype=float).reshape(4, 1)
        # min(1, x/d) structures, in the scalar accumulation order:
        # l1d, bpred, decode, ruu, lsq, regfile, resultbus.
        self._batch_misc_div = np.array(
            [config.n_mem_ports, 2.0, config.decode_width,
             self._ruu_denom, config.n_mem_ports, self._ruu_denom,
             config.issue_width], dtype=float).reshape(7, 1)
        self._batch_misc_w = np.array(
            [w_l1d, w_bp, w_dec, w_ruu, w_lsq, w_rf, w_rb],
            dtype=float).reshape(7, 1)
        # (x != 0) structures: l1i, l2, memctl.
        self._batch_bool_w = np.array(
            [w_l1i, w_l2, w_mc], dtype=float).reshape(3, 1)

    # ------------------------------------------------------------------
    # Per-cycle conversion
    # ------------------------------------------------------------------

    def fractions(self, activity):
        """Structure -> raw utilization fraction for one cycle.

        Fractions may exceed 1.0 in the no-spreading mode (that is the
        point of the paper's spreading fix); they are not clamped.
        """
        cfg = self.config
        out = {}
        out["l1i"] = 1.0 if activity.l1i_accesses else 0.0
        out["bpred"] = min(1.0, activity.bpred_lookups / 2.0)
        out["decode"] = min(1.0, activity.decoded / cfg.decode_width)
        # RUU: dispatch writes, issue selects, writebacks wake up.
        out["ruu"] = min(1.0, (activity.dispatched + activity.issued_total +
                               activity.writebacks) / (3.0 * cfg.issue_width))
        out["lsq"] = min(1.0, activity.issued_mem_port / cfg.n_mem_ports)
        out["regfile"] = min(1.0, (activity.regfile_reads +
                                   activity.regfile_writes)
                             / (3.0 * cfg.issue_width))
        if self.params.spread_multicycle:
            out["int_alu"] = activity.busy_int_alu / cfg.n_int_alu
            out["int_mult"] = activity.busy_int_mult / cfg.n_int_mult
            out["fp_alu"] = activity.busy_fp_alu / cfg.n_fp_alu
            out["fp_mult"] = activity.busy_fp_mult / cfg.n_fp_mult
        else:
            e = self._pool_issue_energy_cycles
            out["int_alu"] = (activity.issued_int_alu * e["int_alu"]
                              / cfg.n_int_alu)
            out["int_mult"] = (activity.issued_int_mult * e["int_mult"]
                               / cfg.n_int_mult)
            out["fp_alu"] = (activity.issued_fp_alu * e["fp_alu"]
                             / cfg.n_fp_alu)
            out["fp_mult"] = (activity.issued_fp_mult * e["fp_mult"]
                              / cfg.n_fp_mult)
        out["l1d"] = min(1.0, activity.l1d_accesses / cfg.n_mem_ports)
        out["l2"] = 1.0 if activity.l2_accesses else 0.0
        out["memctl"] = 1.0 if activity.memory_accesses else 0.0
        out["resultbus"] = min(1.0, activity.writebacks / cfg.issue_width)
        return out

    def breakdown(self, activity):
        """Structure -> watts for one cycle (plus ``"base"``)."""
        params = self.params
        fractions = self.fractions(activity)
        gated = set()
        phantom = set()
        if activity.fu_gated:
            gated.update(FU_GROUP)
        if activity.fu_phantom:
            phantom.update(FU_GROUP)
        if activity.dl1_gated:
            gated.update(DL1_GROUP)
        if activity.dl1_phantom:
            phantom.update(DL1_GROUP)
        if activity.il1_gated:
            gated.update(IL1_GROUP)
        if activity.il1_phantom:
            phantom.update(IL1_GROUP)
        out = {"base": params.base_power}
        for name, max_watts in params.structures.items():
            if name in phantom:
                fraction = 1.0
            elif name in gated:
                fraction = params.gated_factor
            else:
                fraction = max(fractions.get(name, 0.0), params.idle_factor)
            out[name] = max_watts * fraction
        return out

    def power(self, activity):
        """Total watts this cycle.

        Fused equivalent of ``sum(breakdown(activity).values())`` --
        the closed loop calls this every cycle, so it avoids building
        the per-structure dictionaries (kept exactly in sync by the
        ``test_breakdown_sums_to_power`` regression test) and reads the
        per-unit weights precomputed in ``__init__`` instead of the
        params dictionaries.  The arithmetic (operations and their
        order) is unchanged, so the totals are bit-identical to the
        pre-hoisted form -- and to :meth:`power_batch`.
        """
        idle = self._idle
        total = self._base

        # FU group.
        if activity.fu_phantom:
            total += self._fu_lump
        elif activity.fu_gated:
            total += self._fu_lump * self._gatedf
        elif self._spread:
            w_ia, w_im, w_fa, w_fm = self._w_fu
            n_ia, n_im, n_fa, n_fm = self._n_fu
            f = activity.busy_int_alu / n_ia
            total += w_ia * (f if f > idle else idle)
            f = activity.busy_int_mult / n_im
            total += w_im * (f if f > idle else idle)
            f = activity.busy_fp_alu / n_fa
            total += w_fa * (f if f > idle else idle)
            f = activity.busy_fp_mult / n_fm
            total += w_fm * (f if f > idle else idle)
        else:
            w_ia, w_im, w_fa, w_fm = self._w_fu
            n_ia, n_im, n_fa, n_fm = self._n_fu
            e_ia, e_im, e_fa, e_fm = self._e_fu
            f = activity.issued_int_alu * e_ia / n_ia
            total += w_ia * (f if f > idle else idle)
            f = activity.issued_int_mult * e_im / n_im
            total += w_im * (f if f > idle else idle)
            f = activity.issued_fp_alu * e_fa / n_fa
            total += w_fa * (f if f > idle else idle)
            f = activity.issued_fp_mult * e_fm / n_fm
            total += w_fm * (f if f > idle else idle)

        (w_l1d, w_l1i, w_bp, w_dec, w_ruu, w_lsq, w_rf, w_l2, w_mc,
         w_rb) = self._w_misc
        mem_ports = self._n_mem_ports

        # Caches under actuator control.
        if activity.dl1_phantom:
            total += w_l1d
        elif activity.dl1_gated:
            total += w_l1d * self._gatedf
        else:
            f = min(1.0, activity.l1d_accesses / mem_ports)
            total += w_l1d * (f if f > idle else idle)
        if activity.il1_phantom:
            total += w_l1i
        elif activity.il1_gated:
            total += w_l1i * self._gatedf
        else:
            f = 1.0 if activity.l1i_accesses else 0.0
            total += w_l1i * (f if f > idle else idle)

        # Everything else.
        f = min(1.0, activity.bpred_lookups / 2.0)
        total += w_bp * (f if f > idle else idle)
        f = min(1.0, activity.decoded / self._decode_width)
        total += w_dec * (f if f > idle else idle)
        f = min(1.0, (activity.dispatched + activity.issued_total
                      + activity.writebacks) / self._ruu_denom)
        total += w_ruu * (f if f > idle else idle)
        f = min(1.0, activity.issued_mem_port / mem_ports)
        total += w_lsq * (f if f > idle else idle)
        f = min(1.0, (activity.regfile_reads + activity.regfile_writes)
                / self._ruu_denom)
        total += w_rf * (f if f > idle else idle)
        f = 1.0 if activity.l2_accesses else 0.0
        total += w_l2 * (f if f > idle else idle)
        f = 1.0 if activity.memory_accesses else 0.0
        total += w_mc * (f if f > idle else idle)
        f = min(1.0, activity.writebacks / self._issue_width)
        total += w_rb * (f if f > idle else idle)
        return total

    #: Activity fields :meth:`power_batch` consumes, beyond the pool
    #: fields that depend on the spreading mode.
    _BATCH_FLAGS = ("fu_gated", "fu_phantom", "dl1_gated", "dl1_phantom",
                    "il1_gated", "il1_phantom")
    _BATCH_MISC = ("l1d_accesses", "l1i_accesses", "bpred_lookups",
                   "decoded", "dispatched", "issued_total", "writebacks",
                   "issued_mem_port", "regfile_reads", "regfile_writes",
                   "l2_accesses", "memory_accesses")

    @property
    def batch_fields(self):
        """Activity attribute names :meth:`power_batch` needs, in the
        column order its ``cols`` mapping should use."""
        pools = (("busy_int_alu", "busy_int_mult", "busy_fp_alu",
                  "busy_fp_mult") if self._spread else
                 ("issued_int_alu", "issued_int_mult", "issued_fp_alu",
                  "issued_fp_mult"))
        return self._BATCH_FLAGS + pools + self._BATCH_MISC

    def power_batch(self, cols):
        """Per-cycle watts for a whole run at once.

        Args:
            cols: mapping of activity field name (see
                :attr:`batch_fields`) to a 1-D float64 array of
                per-cycle values, all the same length.

        Returns:
            A float64 array of per-cycle totals, *bit-identical* to
            calling :meth:`power` on each cycle's activity record: every
            element sees the same floating-point operations in the same
            order as the scalar path, with ``np.where`` standing in for
            the scalar branches (gating and phantom branches add their
            lump terms exactly as the scalar code does).
        """
        idle = self._idle
        gatedf = self._gatedf
        n = len(cols["writebacks"])
        total = np.full(n, self._base)

        # Matrix form: structures sharing a fraction shape are stacked
        # into a (rows, n) block so one vector operation covers all of
        # them.  Every element still sees the identical sequence of
        # IEEE operations the scalar path applies (divide, min, select,
        # multiply), and the per-structure terms are then accumulated
        # one row at a time in the scalar path's order, so the totals
        # remain bit-identical.

        # FU group: compute the ungated continuation, then select
        # against the phantom/gated branches per element.
        fu_num = np.empty((4, n))
        if self._spread:
            fu_num[0] = cols["busy_int_alu"]
            fu_num[1] = cols["busy_int_mult"]
            fu_num[2] = cols["busy_fp_alu"]
            fu_num[3] = cols["busy_fp_mult"]
            f = fu_num / self._batch_fu_div
        else:
            fu_num[0] = cols["issued_int_alu"]
            fu_num[1] = cols["issued_int_mult"]
            fu_num[2] = cols["issued_fp_alu"]
            fu_num[3] = cols["issued_fp_mult"]
            f = fu_num * self._batch_fu_e / self._batch_fu_div
        fu_terms = self._batch_fu_w * np.where(f > idle, f, idle)
        t = total + fu_terms[0]
        t = t + fu_terms[1]
        t = t + fu_terms[2]
        t = t + fu_terms[3]
        fu_p = cols["fu_phantom"] != 0.0
        fu_g = cols["fu_gated"] != 0.0
        if fu_p.any() or fu_g.any():
            total = np.where(fu_p, total + self._fu_lump,
                             np.where(fu_g,
                                      total + self._fu_lump * gatedf, t))
        else:
            total = t

        # min(1, x/d) structures: l1d, bpred, decode, ruu, lsq,
        # regfile, resultbus (rows in scalar accumulation order).
        mnum = np.empty((7, n))
        mnum[0] = cols["l1d_accesses"]
        mnum[1] = cols["bpred_lookups"]
        mnum[2] = cols["decoded"]
        mnum[3] = (cols["dispatched"] + cols["issued_total"]
                   + cols["writebacks"])
        mnum[4] = cols["issued_mem_port"]
        mnum[5] = cols["regfile_reads"] + cols["regfile_writes"]
        mnum[6] = cols["writebacks"]
        f = np.minimum(1.0, mnum / self._batch_misc_div)
        mterms = self._batch_misc_w * np.where(f > idle, f, idle)

        # (x != 0) structures: l1i, l2, memctl.
        bnum = np.empty((3, n))
        bnum[0] = cols["l1i_accesses"]
        bnum[1] = cols["l2_accesses"]
        bnum[2] = cols["memory_accesses"]
        f = np.where(bnum != 0.0, 1.0, 0.0)
        bterms = self._batch_bool_w * np.where(f > idle, f, idle)

        w_l1d = self._w_misc[0]
        w_l1i = self._w_misc[1]

        # Caches under actuator control.
        t = total + mterms[0]
        dl1_p = cols["dl1_phantom"] != 0.0
        dl1_g = cols["dl1_gated"] != 0.0
        if dl1_p.any() or dl1_g.any():
            total = np.where(dl1_p, total + w_l1d,
                             np.where(dl1_g, total + w_l1d * gatedf, t))
        else:
            total = t
        t = total + bterms[0]
        il1_p = cols["il1_phantom"] != 0.0
        il1_g = cols["il1_gated"] != 0.0
        if il1_p.any() or il1_g.any():
            total = np.where(il1_p, total + w_l1i,
                             np.where(il1_g, total + w_l1i * gatedf, t))
        else:
            total = t

        # Everything else, in the scalar path's accumulation order.
        total = total + mterms[1]  # bpred
        total = total + mterms[2]  # decode
        total = total + mterms[3]  # ruu
        total = total + mterms[4]  # lsq
        total = total + mterms[5]  # regfile
        total = total + bterms[1]  # l2
        total = total + bterms[2]  # memctl
        total = total + mterms[6]  # resultbus
        return total

    def current(self, activity):
        """Total amperes this cycle (``P / Vdd``)."""
        return self.power(activity) / self.params.vdd

    # ------------------------------------------------------------------
    # Design-level envelope (used by the threshold solver)
    # ------------------------------------------------------------------

    def max_power(self):
        """Every structure at full tilt, watts."""
        return self.params.base_power + self.params.total_structure_power

    def min_power(self):
        """Everything idle under conditional clocking (no actuation)."""
        return (self.params.base_power +
                self.params.idle_factor * self.params.total_structure_power)

    def gated_min_power(self):
        """Idle machine with all actuator groups clock-gated."""
        params = self.params
        actuated = set(FU_GROUP) | set(DL1_GROUP) | set(IL1_GROUP)
        total = params.base_power
        for name, watts in params.structures.items():
            factor = (params.gated_factor if name in actuated
                      else params.idle_factor)
            total += watts * factor
        return total

    def current_envelope(self):
        """``(i_min, i_max)`` in amperes: the worst-case swing the PDN
        must be designed against (minimum-power idle to maximum-power
        burst)."""
        return (self.min_power() / self.params.vdd,
                self.max_power() / self.params.vdd)

    #: Activity level assumed for structures that keep running while a
    #: voltage-low response is active (they are not at max -- commit has
    #: stalled -- but they are far from idle).
    BYSTANDER_ACTIVITY = 0.55

    def response_envelope(self, groups=("fu", "dl1", "il1")):
        """Currents an actuator over ``groups`` can force, amperes.

        Returns ``(i_reduce, i_boost)``:

        * ``i_reduce`` -- the worst-case (highest) current while the
          actuated groups are clock-gated.  Gating a group does *not*
          quiesce the rest of the machine: with only the FUs gated, the
          front end keeps fetching into the window and the memory ports
          keep issuing, so those bystander structures are charged at
          :data:`BYSTANDER_ACTIVITY`; adding DL1 stops the memory path;
          only adding IL1 stalls fetch and lets everything idle.  This
          is why the FU-only lever is weak -- the paper's finding that
          FU-only control "does not have the necessary leverage" and
          destabilizes at larger delays.
        * ``i_boost`` -- the pessimistic (lowest) current a voltage-high
          response can force: the actuated groups phantom-fired at full
          power with everything else idle.
        """
        from repro.power.params import DL1_GROUP, FU_GROUP, IL1_GROUP
        group_structures = {"fu": FU_GROUP, "dl1": DL1_GROUP,
                            "il1": IL1_GROUP}
        actuated = set()
        for g in groups:
            if g not in group_structures:
                raise ValueError("unknown actuator group %r" % g)
            actuated.update(group_structures[g])
        # Which structures keep running while the reduce response holds.
        front_end = {"l1i", "bpred", "decode", "ruu"}
        memory_path = {"lsq", "l1d", "l2", "memctl", "regfile", "resultbus"}
        if "il1" in groups:
            bystanders = set()
        elif "dl1" in groups:
            bystanders = front_end - set(IL1_GROUP)
        else:
            bystanders = (front_end | memory_path) - actuated
        params = self.params
        reduce_power = params.base_power
        boost_power = params.base_power
        for name, watts in params.structures.items():
            if name in actuated:
                reduce_power += watts * params.gated_factor
                boost_power += watts
            elif name in bystanders:
                reduce_power += watts * self.BYSTANDER_ACTIVITY
                boost_power += watts * params.idle_factor
            else:
                reduce_power += watts * params.idle_factor
                boost_power += watts * params.idle_factor
        return (reduce_power / params.vdd, boost_power / params.vdd)
