"""Wattch-style structural power model.

Converts the cycle simulator's per-cycle activity into watts (and, at
the nominal supply voltage, amperes) the way the paper's modified Wattch
does (Section 3.1):

* **structural accounting** -- each microarchitectural structure has a
  maximum power at 3 GHz / 1.0 V and dissipates in proportion to its
  per-cycle activity (:mod:`repro.power.params`,
  :mod:`repro.power.model`);
* **conditional clock gating** -- idle structures fall to a small idle
  fraction of their maximum, and structures gated by the dI/dt actuator
  fall further still;
* **phantom firing** -- an actuated unit group can be charged at full
  power regardless of useful activity (the voltage-high response);
* **multi-cycle energy spreading** -- the paper's fix for overestimated
  current swings: a long operation's energy is spread over its occupancy
  rather than charged at issue.  Both behaviours are implemented so the
  ablation bench can quantify the difference.

:mod:`repro.power.trace` provides current-trace containers and energy
accounting.
"""

from repro.power.params import PowerParams, STRUCTURES
from repro.power.model import PowerModel
from repro.power.trace import CurrentTrace

__all__ = ["PowerParams", "STRUCTURES", "PowerModel", "CurrentTrace"]
