"""Current-trace containers and energy accounting."""

import numpy as np


class CurrentTrace:
    """A per-cycle current (and power) trace with energy accounting.

    Collected by running the machine with a cycle hook::

        trace = CurrentTrace(clock_hz=3e9, vdd=1.0)
        machine.run(cycle_hook=lambda m, a: trace.append(model.power(a)))
    """

    def __init__(self, clock_hz, vdd=1.0):
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        self.clock_hz = clock_hz
        self.vdd = vdd
        self._powers = []

    def append(self, power_watts):
        """Record one cycle's power."""
        self._powers.append(power_watts)

    def __len__(self):
        return len(self._powers)

    @property
    def powers(self):
        """Per-cycle power, watts (numpy array)."""
        return np.asarray(self._powers)

    @property
    def currents(self):
        """Per-cycle current, amperes (numpy array)."""
        return self.powers / self.vdd

    @property
    def cycle_time(self):
        """Seconds per cycle."""
        return 1.0 / self.clock_hz

    def total_energy(self):
        """Joules over the whole trace."""
        return float(np.sum(self.powers)) * self.cycle_time

    def average_power(self):
        """Mean watts (0.0 for an empty trace)."""
        if not self._powers:
            return 0.0
        return float(np.mean(self.powers))

    def swing(self):
        """``(i_min, i_max)`` observed in the trace, amperes."""
        if not self._powers:
            return (0.0, 0.0)
        currents = self.currents
        return (float(currents.min()), float(currents.max()))

    def windowed_max_swing(self, window):
        """Largest min-to-max current excursion inside any ``window``
        consecutive cycles -- the dI/dt the PDN actually sees at its
        resonant time scale."""
        if window <= 0:
            raise ValueError("window must be positive")
        currents = self.currents
        if currents.size == 0:
            return 0.0
        if currents.size <= window:
            return float(currents.max() - currents.min())
        best = 0.0
        # Sliding min/max via stride tricks would be fancier; traces in
        # this codebase are short enough for the simple windowed scan.
        for start in range(0, currents.size - window):
            chunk = currents[start:start + window]
            best = max(best, float(chunk.max() - chunk.min()))
        return best
