"""Versioned schema for externally produced per-cycle power traces.

A *trace* is a 1-D series of per-cycle samples -- die current in
amperes (units ``"A"``) or die power in watts (units ``"W"``) --
together with the clock the exporter sampled at.  Traces arrive from
outside this repo (architectural simulators, RTL power tools, silicon
measurements), so the loaders here are deliberately strict: a file
that is truncated, torn, mixed-unit, empty, or carries a non-finite or
negative sample is rejected with a cycle-indexed
:class:`TraceValidationError` instead of being silently repaired.
(Contrast the sweep journal, which *tolerates* a torn final line on
replay: a journal tail is our own crash artifact, while a torn trace
is someone else's export bug and must be re-exported.)

Three on-disk formats are accepted (see DESIGN.md section 13):

* **CSV** -- optional header naming the value column ``current_a`` or
  ``power_w`` (which fixes the units; a file carrying *both* columns
  is rejected as mixed-unit); headerless files are a single numeric
  column and need explicit units.  A ``cycle`` column, if present, is
  ignored.
* **NPY** -- a 1-D numeric array; units must be given by the caller.
* **JSONL** -- a header object line ``{"schema": 1, "units": ...,
  "clock_hz": ..., "name": ...}`` followed by one JSON number per
  line.

The content hash (:func:`trace_content_hash`) covers the schema
version, units, clock, and the raw little-endian float64 sample bytes
-- the name is a mutable label and deliberately excluded, like a git
ref over a git object.
"""

import hashlib
import json
import math
import os

import numpy as np

from repro.pdn.rlc import NOMINAL_CLOCK_HZ

#: Bump when the trace schema (formats, hashing, meta) changes shape.
TRACE_SCHEMA = 1

#: Accepted sample units: amperes or watts.
UNITS = ("A", "W")

#: Accepted on-disk formats.
FORMATS = ("csv", "npy", "jsonl")

#: CSV value-column name -> units.
_COLUMN_UNITS = {"current_a": "A", "power_w": "W"}

_EXTENSIONS = {".csv": "csv", ".npy": "npy",
               ".jsonl": "jsonl", ".ndjson": "jsonl"}


class TraceValidationError(ValueError):
    """The trace file or its samples violate the schema."""


def validate_samples(samples):
    """Strictly validate a sample array; raises with the cycle index.

    Rejects empty and non-1-D arrays, and the *first* (in cycle order)
    non-finite or negative sample -- a negative die current/power is
    always an exporter bug, and a NaN would silently poison every
    downstream PDN state and emergency count.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise TraceValidationError(
            "trace samples must be 1-D, got shape %r" % (samples.shape,))
    if samples.size == 0:
        raise TraceValidationError("trace is empty (no samples)")
    bad = ~np.isfinite(samples) | (samples < 0.0)
    if bad.any():
        cycle = int(np.argmax(bad))
        value = samples[cycle]
        kind = ("non-finite" if not math.isfinite(value) else "negative")
        raise TraceValidationError(
            "%s sample %r at cycle %d" % (kind, float(value), cycle))
    return samples


def trace_content_hash(units, clock_hz, samples):
    """Stable hex digest over schema + units + clock + sample bytes."""
    header = json.dumps(
        {"clock_hz": float(clock_hz), "schema": TRACE_SCHEMA,
         "units": units},
        sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(header.encode("utf-8"))
    digest.update(b"\n")
    digest.update(np.ascontiguousarray(samples, dtype="<f8").tobytes())
    return digest.hexdigest()


class Trace:
    """One validated imported trace (immutable by convention).

    Args:
        samples: 1-D per-cycle values (amperes or watts, per
            ``units``); validated on construction unless ``validate``
            is off (the store's read path re-validates via the content
            hash instead).
        units: ``"A"`` or ``"W"``.
        clock_hz: the exporter's sample clock.  Replay refuses traces
            whose clock does not match the simulated design's.
        name: a human label (mutable, excluded from the hash).
    """

    __slots__ = ("samples", "units", "clock_hz", "name")

    def __init__(self, samples, units="A", clock_hz=NOMINAL_CLOCK_HZ,
                 name=None, validate=True):
        if units not in UNITS:
            raise TraceValidationError(
                "unknown units %r (known: %s)" % (units, ", ".join(UNITS)))
        if isinstance(clock_hz, bool) or \
                not isinstance(clock_hz, (int, float)) \
                or not math.isfinite(float(clock_hz)) \
                or float(clock_hz) <= 0:
            raise TraceValidationError(
                "clock_hz must be a positive finite number, got %r"
                % (clock_hz,))
        samples = np.ascontiguousarray(samples, dtype=np.float64)
        if validate:
            samples = validate_samples(samples)
        self.samples = samples
        self.units = units
        self.clock_hz = float(clock_hz)
        self.name = str(name) if name else None

    @property
    def n_samples(self):
        return int(self.samples.size)

    def currents(self, nominal_volts=1.0):
        """Per-cycle currents in amperes (``W`` divides by the nominal
        die voltage, the same convention the closed loop uses for its
        power -> current conversion)."""
        if self.units == "A":
            return self.samples
        return self.samples / float(nominal_volts)

    def content_hash(self):
        return trace_content_hash(self.units, self.clock_hz, self.samples)

    def meta(self):
        """JSON-safe descriptive header (hash included)."""
        return {
            "schema": TRACE_SCHEMA,
            "hash": self.content_hash(),
            "name": self.name,
            "units": self.units,
            "clock_hz": self.clock_hz,
            "n_samples": self.n_samples,
        }

    def __repr__(self):
        return ("Trace(%s, %d samples, %s, %.3g Hz)"
                % (self.name or self.content_hash()[:12],
                   self.n_samples, self.units, self.clock_hz))


def detect_format(path):
    """Infer a loader format from the file extension."""
    ext = os.path.splitext(str(path))[1].lower()
    try:
        return _EXTENSIONS[ext]
    except KeyError:
        raise ValueError(
            "cannot infer trace format from %r (known extensions: %s; "
            "pass an explicit format)"
            % (path, ", ".join(sorted(_EXTENSIONS)))) from None


def _load_csv(path, units, clock_hz, name):
    with open(path, "r", newline="") as fh:
        raw = fh.read()
    rows = []
    for lineno, line in enumerate(raw.split("\n"), start=1):
        if line.strip():
            rows.append((lineno, [cell.strip() for cell in
                                  line.split(",")]))
    if not rows:
        raise TraceValidationError("trace is empty (no samples)")

    def _numeric(cell):
        try:
            float(cell)
            return True
        except ValueError:
            return False

    first = rows[0][1]
    column = 0
    if not all(_numeric(cell) for cell in first):
        header = [cell.lower() for cell in first]
        value_columns = [i for i, col in enumerate(header)
                         if col in _COLUMN_UNITS]
        if len(value_columns) > 1:
            raise TraceValidationError(
                "mixed units: header names both %s (one value column "
                "per trace)"
                % " and ".join(header[i] for i in value_columns))
        if not value_columns:
            raise TraceValidationError(
                "no value column in header %r (want current_a or "
                "power_w)" % (first,))
        column = value_columns[0]
        column_units = _COLUMN_UNITS[header[column]]
        if units is not None and units != column_units:
            raise ValueError(
                "requested units %r conflict with the %r column"
                % (units, header[column]))
        units = column_units
        rows = rows[1:]
        if not rows:
            raise TraceValidationError("trace is empty (header only)")
    elif units is None:
        raise ValueError(
            "headerless CSV has no unit information: pass units "
            "explicitly (--units A|W)")

    samples = []
    for lineno, cells in rows:
        if column >= len(cells):
            raise TraceValidationError(
                "line %d: missing value column %d" % (lineno, column))
        cell = cells[column]
        try:
            samples.append(float(cell))
        except ValueError:
            raise TraceValidationError(
                "line %d: non-numeric sample %r" % (lineno, cell)) \
                from None
    return Trace(samples, units=units,
                 clock_hz=(clock_hz if clock_hz is not None
                           else NOMINAL_CLOCK_HZ), name=name)


def _load_npy(path, units, clock_hz, name):
    if units is None:
        raise ValueError("NPY traces carry no unit information: pass "
                         "units explicitly (--units A|W)")
    try:
        array = np.load(path, allow_pickle=False)
    except (ValueError, OSError, EOFError) as exc:
        raise TraceValidationError(
            "truncated or unreadable NPY: %s" % exc) from None
    if not np.issubdtype(array.dtype, np.number):
        raise TraceValidationError(
            "NPY dtype %r is not numeric" % (array.dtype,))
    return Trace(array, units=units,
                 clock_hz=(clock_hz if clock_hz is not None
                           else NOMINAL_CLOCK_HZ), name=name)


def _load_jsonl(path, units, clock_hz, name):
    with open(path, "r") as fh:
        text = fh.read()
    if not text.strip():
        raise TraceValidationError("trace is empty (no header line)")
    if not text.endswith("\n"):
        # A torn final line means the exporter died mid-write; even a
        # parseable tail could be a truncated longer number.  The sweep
        # journal *tolerates* its own torn tail on replay; an imported
        # trace must be re-exported instead.
        lineno = text.count("\n") + 1
        tail = text.rsplit("\n", 1)[-1]
        raise TraceValidationError(
            "torn final line %d (no trailing newline): %r -- the file "
            "was truncated mid-write; re-export the trace"
            % (lineno, tail[:60]))
    lines = text.split("\n")[:-1]
    try:
        header = json.loads(lines[0])
    except ValueError:
        raise TraceValidationError(
            "line 1: unparsable header %r" % lines[0][:60]) from None
    if not isinstance(header, dict):
        raise TraceValidationError(
            "line 1: header must be a JSON object, got %r"
            % lines[0][:60])
    schema = header.get("schema")
    if schema != TRACE_SCHEMA:
        raise TraceValidationError(
            "unsupported trace schema %r (this code reads schema %d)"
            % (schema, TRACE_SCHEMA))
    file_units = header.get("units")
    if file_units is not None:
        if units is not None and units != file_units:
            raise ValueError(
                "requested units %r conflict with the header's %r"
                % (units, file_units))
        units = file_units
    if units is None:
        raise ValueError("jsonl header carries no units: add them to "
                         "the header or pass units explicitly")
    file_clock = header.get("clock_hz")
    if file_clock is not None:
        if clock_hz is not None and float(clock_hz) != float(file_clock):
            raise ValueError(
                "requested clock %r conflicts with the header's %r"
                % (clock_hz, file_clock))
        clock_hz = file_clock
    name = header.get("name") or name
    samples = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            value = json.loads(line)
        except ValueError:
            raise TraceValidationError(
                "line %d: unparsable sample %r" % (lineno, line[:60])) \
                from None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TraceValidationError(
                "line %d: sample must be a number, got %r"
                % (lineno, line[:60]))
        samples.append(float(value))
    return Trace(samples, units=units,
                 clock_hz=(clock_hz if clock_hz is not None
                           else NOMINAL_CLOCK_HZ), name=name)


_LOADERS = {"csv": _load_csv, "npy": _load_npy, "jsonl": _load_jsonl}


def load_trace(path, fmt=None, units=None, clock_hz=None, name=None):
    """Load and strictly validate one trace file.

    Args:
        path: the trace file.
        fmt: ``"csv"``/``"npy"``/``"jsonl"`` (default: by extension).
        units: ``"A"`` or ``"W"`` where the format does not carry them
            (NPY, headerless CSV); a conflict with in-file units is a
            usage error.
        clock_hz: sample clock where the format does not carry it
            (default: the nominal 3 GHz machine clock).
        name: label override (default: the file's basename stem).

    Raises:
        TraceValidationError: the file content violates the schema
            (path-prefixed, cycle- or line-indexed).
        ValueError: the *request* is wrong (unknown format, missing
            or conflicting units/clock) -- a usage error, not a bad
            file.
        OSError: the file cannot be read at all.
    """
    path = str(path)
    fmt = fmt or detect_format(path)
    if fmt not in _LOADERS:
        raise ValueError("unknown trace format %r (known: %s)"
                         % (fmt, ", ".join(FORMATS)))
    if units is not None and units not in UNITS:
        raise ValueError("unknown units %r (known: %s)"
                         % (units, ", ".join(UNITS)))
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    try:
        return _LOADERS[fmt](path, units, clock_hz, name)
    except TraceValidationError as exc:
        raise TraceValidationError("%s: %s" % (path, exc)) from None
