"""Content-addressed on-disk store for imported traces and suites.

Layout::

    <root>/v1/<hh>/<hash>/samples.npy   raw float64 samples
    <root>/v1/<hh>/<hash>/meta.json     schema/units/clock/name header
    <root>/v1/suites/<name>.json        immutable named suites

where ``root`` is ``REPRO_TRACE_DIR`` (default
``~/.local/share/repro-didt/traces``), ``v1`` is the store layout
version, ``hh`` keeps directories small, and ``hash`` is the trace's
content hash (:func:`~repro.traces.schema.trace_content_hash`).

The write/read discipline mirrors
:class:`~repro.orchestrator.cache.ResultCache`: every file lands via a
same-directory temp file + ``os.replace`` (samples first, ``meta.json``
last, so the meta file is the commit record), and a read that finds a
present-but-untrustworthy entry -- unreadable, unparsable, or failing
its content-hash recomputation -- degrades to a *miss*, counted in
:attr:`TraceStore.integrity_misses`, never a wrong replay.

Suites are **immutable**: ``put_suite`` on an existing name succeeds
only when the membership is byte-identical, so a suite name in a report
always means the same cells (the no-cherry-picking discipline).
"""

import io
import json
import os
import re
import tempfile

import numpy as np

from repro.faults import iofault
from repro.traces.schema import TRACE_SCHEMA, Trace

#: Store layout version (directory name under the root).
STORE_LAYOUT = "v1"

_HASH_RE = re.compile(r"^[0-9a-f]{64}$")
_PREFIX_RE = re.compile(r"^[0-9a-f]{6,63}$")
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def default_trace_root():
    """``REPRO_TRACE_DIR`` or the per-user data directory."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".local", "share",
                        "repro-didt", "traces")


def _write_atomic(path, data, binary=False):
    """Temp-file + rename publish through the ``traces`` fault seam.

    The trace store's failure domain is *fail loud*: imports are
    user-initiated durable writes, so an injected or real ``OSError``
    (ENOSPC, EIO, failed rename) propagates to the caller after the
    temp file is cleaned up -- the CLI turns it into a non-zero exit,
    never a silently half-imported trace.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb" if binary else "w") as fh:
            iofault.write("traces", fh, data)
        iofault.replace("traces", tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            # Best-effort cleanup only; the original failure re-raises
            # below, and a surviving temp file is reclaimed by
            # ``repro-didt doctor``.
            pass
        raise


class TraceStore:
    """Disk store of imported traces keyed by content hash.

    Args:
        root: store directory (default :func:`default_trace_root`).
            Nothing is created until the first :meth:`put`.
    """

    def __init__(self, root=None):
        self.root = str(root) if root else default_trace_root()
        #: Present-but-untrustworthy entries encountered (torn writes,
        #: hand edits, hash mismatches) -- observable, never silent.
        self.integrity_misses = 0

    # -- paths ---------------------------------------------------------

    @property
    def base(self):
        return os.path.join(self.root, STORE_LAYOUT)

    def entry_dir(self, digest):
        return os.path.join(self.base, digest[:2], digest)

    def _suite_path(self, name):
        return os.path.join(self.base, "suites", name + ".json")

    # -- traces --------------------------------------------------------

    def put(self, trace):
        """Store a trace atomically; returns its content hash.

        Idempotent: re-importing identical content lands on the same
        entry (the meta -- including the mutable name label -- is
        refreshed from the latest import).
        """
        digest = trace.content_hash()
        directory = self.entry_dir(digest)
        samples = np.ascontiguousarray(trace.samples, dtype="<f8")
        buffer = io.BytesIO()
        np.save(buffer, samples)
        _write_atomic(os.path.join(directory, "samples.npy"),
                      buffer.getvalue(), binary=True)
        meta = trace.meta()
        _write_atomic(os.path.join(directory, "meta.json"),
                      json.dumps(meta, sort_keys=True, indent=2) + "\n")
        return digest

    def meta_for(self, digest):
        """The stored meta dict for a hash, or ``None`` on any miss."""
        path = os.path.join(self.entry_dir(digest), "meta.json")
        try:
            fh = open(path, "r")
        except OSError:
            # Absent (or unopenable) entry: a plain miss by contract;
            # a *present* entry that fails validation is counted below,
            # and ``doctor`` reports unreadable present entries.
            return None
        try:
            with fh:
                meta = json.load(fh)
            if not isinstance(meta, dict) or meta.get("hash") != digest \
                    or meta.get("schema") != TRACE_SCHEMA:
                raise ValueError("meta mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.integrity_misses += 1
            return None
        return meta

    def get(self, digest):
        """The stored :class:`Trace` for a hash, or ``None`` on miss.

        A present entry whose samples fail to load, fail validation,
        or do not hash back to ``digest`` is an integrity miss.
        """
        meta = self.meta_for(digest)
        if meta is None:
            return None
        path = os.path.join(self.entry_dir(digest), "samples.npy")
        try:
            samples = np.load(path, allow_pickle=False)
            trace = Trace(samples, units=meta["units"],
                          clock_hz=meta["clock_hz"],
                          name=meta.get("name"))
            if trace.content_hash() != digest:
                raise ValueError("content hash mismatch")
        except (OSError, ValueError, KeyError, TypeError, EOFError):
            self.integrity_misses += 1
            return None
        return trace

    def verify_entry(self, digest):
        """Scrub one stored trace; ``None`` if trustworthy, else a
        short reason string (meta header, sample load, and full
        content-hash recomputation -- the same checks :meth:`get`
        applies, without touching the miss counters)."""
        directory = self.entry_dir(digest)
        meta_path = os.path.join(directory, "meta.json")
        try:
            with open(meta_path, "r") as fh:
                meta = json.load(fh)
            if not isinstance(meta, dict) or meta.get("hash") != digest \
                    or meta.get("schema") != TRACE_SCHEMA:
                raise ValueError("meta mismatch")
        except OSError as exc:
            return "meta unreadable: %s" % (exc.strerror or exc)
        except (ValueError, KeyError, TypeError):
            return "meta unparsable or mismatched"
        try:
            samples = np.load(os.path.join(directory, "samples.npy"),
                              allow_pickle=False)
            trace = Trace(samples, units=meta["units"],
                          clock_hz=meta["clock_hz"],
                          name=meta.get("name"))
            if trace.content_hash() != digest:
                raise ValueError("content hash mismatch")
        except OSError as exc:
            return "samples unreadable: %s" % (exc.strerror or exc)
        except (ValueError, KeyError, TypeError, EOFError) as exc:
            return str(exc) or exc.__class__.__name__
        return None

    def list(self):
        """Meta dicts for every readable trace, sorted by (name, hash)."""
        metas = []
        base = self.base
        if not os.path.isdir(base):
            return metas
        for hh in sorted(os.listdir(base)):
            if len(hh) != 2:
                continue
            bucket = os.path.join(base, hh)
            for digest in sorted(os.listdir(bucket)):
                if _HASH_RE.match(digest):
                    meta = self.meta_for(digest)
                    if meta is not None:
                        metas.append(meta)
        metas.sort(key=lambda m: (m.get("name") or "", m["hash"]))
        return metas

    def resolve(self, token):
        """A full content hash for a name, hash, or hash prefix.

        Raises:
            KeyError: unknown or ambiguous token (message lists what
                the store holds).
        """
        token = str(token)
        if _HASH_RE.match(token):
            if self.meta_for(token) is None:
                raise KeyError("no trace %s in the store at %s"
                               % (token, self.root))
            return token
        metas = self.list()
        matches = [m["hash"] for m in metas if m.get("name") == token]
        if not matches and _PREFIX_RE.match(token):
            matches = [m["hash"] for m in metas
                       if m["hash"].startswith(token)]
        if len(matches) == 1:
            return matches[0]
        known = ", ".join(
            "%s (%s)" % (m.get("name") or "-", m["hash"][:12])
            for m in metas) or "store is empty"
        if matches:
            raise KeyError("ambiguous trace %r matches %d entries; "
                           "use a full hash (known: %s)"
                           % (token, len(matches), known))
        raise KeyError("unknown trace %r in the store at %s "
                       "(known: %s)" % (token, self.root, known))

    # -- suites --------------------------------------------------------

    def put_suite(self, name, workloads):
        """Create an immutable named suite; returns its path.

        Idempotent for identical membership; a different membership
        under an existing name raises ``ValueError`` (pick a new
        name -- suite names must always mean the same cells).
        """
        if not _NAME_RE.match(name):
            raise ValueError("bad suite name %r (want letters, digits, "
                             "'.', '_', '-')" % (name,))
        workloads = [str(w) for w in workloads]
        if not workloads:
            raise ValueError("a suite needs at least one workload")
        existing = self.get_suite(name)
        path = self._suite_path(name)
        if existing is not None:
            if existing == workloads:
                return path
            raise ValueError(
                "suite %r already exists with different members "
                "(suites are immutable; pick a new name)" % (name,))
        payload = {"schema": TRACE_SCHEMA, "name": name,
                   "workloads": workloads}
        _write_atomic(path, json.dumps(payload, sort_keys=True,
                                       indent=2) + "\n")
        return path

    def get_suite(self, name):
        """The suite's workload list, or ``None`` on any miss."""
        try:
            fh = open(self._suite_path(name), "r")
        except OSError:
            # Absent suite: a plain miss; a present-but-corrupt suite
            # file is counted below and reported by ``doctor``.
            return None
        try:
            with fh:
                payload = json.load(fh)
            workloads = payload["workloads"]
            if payload.get("schema") != TRACE_SCHEMA \
                    or payload.get("name") != name \
                    or not isinstance(workloads, list) or not workloads \
                    or not all(isinstance(w, str) for w in workloads):
                raise ValueError("suite mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.integrity_misses += 1
            return None
        return list(workloads)

    def list_suites(self):
        """``{name: workloads}`` for every readable stored suite."""
        directory = os.path.join(self.base, "suites")
        suites = {}
        if not os.path.isdir(directory):
            return suites
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(".json"):
                continue
            name = entry[:-len(".json")]
            members = self.get_suite(name)
            if members is not None:
                suites[name] = members
        return suites

    def stats(self):
        """JSON-safe summary of what is on disk."""
        info = {"root": self.root, "layout": STORE_LAYOUT,
                "traces": 0, "samples": 0, "bytes": 0, "suites": 0}
        for meta in self.list():
            info["traces"] += 1
            info["samples"] += int(meta.get("n_samples") or 0)
            directory = self.entry_dir(meta["hash"])
            for filename in ("samples.npy", "meta.json"):
                try:
                    info["bytes"] += os.path.getsize(
                        os.path.join(directory, filename))
                except OSError:
                    # Entry vanished mid-scan; the next scan's counts
                    # reflect it.
                    pass
        info["suites"] = len(self.list_suites())
        return info

    def __repr__(self):
        return ("TraceStore(root=%r, integrity_misses=%d)"
                % (self.root, self.integrity_misses))
