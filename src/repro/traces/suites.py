"""Named, immutable workload suites.

A suite is a *name for a fixed set of workloads*, so a report that
says ``spec2000-all26`` always means the same 26 cells -- the
no-cherry-picking discipline the paper's full-suite tables rely on.

Built-in suites cover the synthesized SPEC2000 profiles and the
stressmark; user-defined suites (stored in a
:class:`~repro.traces.store.TraceStore`) add imported traces and are
immutable once created.  Membership tokens are workload names as the
orchestrator spells them: a benchmark name, ``stressmark``, or
``trace:<ref>`` for an imported trace.
"""

from repro.workloads.spec import ACTIVE_BENCHMARKS, SPEC2000, SPEC_FP, SPEC_INT

#: Immutable built-in suites (name -> workload tokens).
BUILTIN_SUITES = {
    "spec2000-all26": tuple(sorted(SPEC2000)),
    "spec2000-int": tuple(sorted(SPEC_INT)),
    "spec2000-fp": tuple(sorted(SPEC_FP)),
    "spec2000-active8": tuple(ACTIVE_BENCHMARKS),
    "stressmark-family": ("stressmark",),
}


def known_suites(store=None):
    """Sorted suite names: built-ins plus any stored suites."""
    names = set(BUILTIN_SUITES)
    if store is not None:
        names.update(store.list_suites())
    return sorted(names)


def expand_suite(name, store=None):
    """The workload tokens of one suite, as a list.

    Stored suites cannot shadow a built-in name (``put_suite`` is free
    to create one, but expansion always prefers the built-in, so the
    built-in names stay reserved vocabulary).

    Raises:
        ValueError: unknown suite (message lists what exists).
    """
    if name in BUILTIN_SUITES:
        return list(BUILTIN_SUITES[name])
    if store is not None:
        members = store.get_suite(name)
        if members is not None:
            return list(members)
    raise ValueError("unknown suite %r (known: %s)"
                     % (name, ", ".join(known_suites(store))))


def expand_suites(names, store=None):
    """Expand several suites into one workload list.

    Returns:
        ``(workloads, members)`` -- the concatenated workload tokens
        (suite order preserved, repeated suite names deduplicated) and
        a ``{suite: member list}`` dict for suite-level reporting.
    """
    workloads = []
    members = {}
    for name in names:
        if name in members:
            continue
        expanded = expand_suite(name, store)
        members[name] = expanded
        workloads.extend(expanded)
    return workloads, members
