"""External power-trace ingestion, storage, replay, and suites.

``repro.traces`` turns real per-cycle current/power traces into
first-class workloads: a versioned file schema with a strict validator
(:mod:`~repro.traces.schema`), a content-addressed on-disk store with
the result cache's atomic-write / corrupt-as-miss discipline
(:mod:`~repro.traces.store`), deterministic replay through the PDN +
sensor + controller loop (:mod:`~repro.traces.replay`), and named
immutable workload suites (:mod:`~repro.traces.suites`).
"""

from repro.traces.replay import (
    GROUP_WEIGHTS,
    TraceMachine,
    TraceReplayError,
    modulated_current,
    replay_trace,
)
from repro.traces.schema import (
    FORMATS,
    TRACE_SCHEMA,
    UNITS,
    Trace,
    TraceValidationError,
    detect_format,
    load_trace,
    trace_content_hash,
    validate_samples,
)
from repro.traces.store import STORE_LAYOUT, TraceStore, default_trace_root
from repro.traces.suites import (
    BUILTIN_SUITES,
    expand_suite,
    expand_suites,
    known_suites,
)

__all__ = [
    "BUILTIN_SUITES",
    "FORMATS",
    "GROUP_WEIGHTS",
    "STORE_LAYOUT",
    "TRACE_SCHEMA",
    "Trace",
    "TraceMachine",
    "TraceReplayError",
    "TraceStore",
    "TraceValidationError",
    "UNITS",
    "default_trace_root",
    "detect_format",
    "expand_suite",
    "expand_suites",
    "known_suites",
    "load_trace",
    "modulated_current",
    "replay_trace",
    "trace_content_hash",
    "validate_samples",
]
