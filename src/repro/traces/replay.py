"""Replay an imported trace through the PDN + sensor + controller loop.

An imported trace fixes the per-cycle load current, so replay has no
microarchitectural machine to simulate -- what remains is exactly the
paper's control problem: the PDN's voltage response, the delayed noisy
threshold sensor, and the actuator shaping next cycle's current.

Two paths, mirroring :class:`~repro.control.loop.ClosedLoopSimulation`:

* **uncontrolled** replay is vectorized -- one
  :meth:`~repro.pdn.discrete.PdnSimulator.run` over the whole window
  plus the batch emergency fold and a cumulative-sum energy fold --
  and is *bit-identical* to the per-cycle loop (the PDN kernel, the
  counter's ``observe_array``, and the ``np.cumsum`` fold are each
  individually pinned to their scalar forms; ``force_lockstep``
  keeps the scalar path alive for parity tests);
* **controlled** replay steps in lockstep with a real
  :class:`~repro.control.controller.ThresholdController` driving a
  minimal :class:`TraceMachine` adapter.

Since a trace has no functional units to actually gate, actuation is
modeled on the current itself: gating a unit group removes that
group's share of the *modulated* portion of the sample (the span above
the trace's floor), and phantom firing adds the share of the headroom
up to the trace's ceiling::

    reduce:  i = floor + (1 - sum(gated weights))   * (sample - floor)
    boost:   i = sample + sum(phantom weights) * (ceiling - sample)

with fixed documented weights (``fu`` 0.5, ``dl1`` 0.3, ``il1`` 0.2 --
the execution-core share dominating, per the paper's per-unit current
breakdown).  The floor/ceiling are the replayed window's own min/max,
so the model never invents currents outside what the exporter saw.

Warm-up for a trace job is a *head skip* in cycles (default 0): traces
arrive already warmed by their exporter, and skipping more cycles than
the trace holds is an error, not an empty run.
"""

import numpy as np

from repro.control.actuators import Actuator
from repro.control.controller import PlausibilityMonitor, ThresholdController
from repro.control.emergencies import NOMINAL_VOLTAGE, EmergencyCounter
from repro.control.sensor import ThresholdSensor
from repro.pdn.discrete import DiscretePdn, PdnSimulator

#: Unit-group share of the modulated current (sums to 1.0 so the
#: full ``ideal``/``fu_dl1_il1`` gate reaches the trace floor).
GROUP_WEIGHTS = {"fu": 0.5, "dl1": 0.3, "il1": 0.2}


class TraceReplayError(ValueError):
    """The trace cannot drive this design (clock mismatch, too short)."""


class _UnitFlags:
    __slots__ = ("gated", "phantom")

    def __init__(self):
        self.gated = False
        self.phantom = False


class TraceMachine:
    """The minimal machine surface an :class:`Actuator` drives.

    Real machines expose ``fus``/``dl1``/``il1`` units with
    ``gated``/``phantom`` flags plus ``flush_pipeline``; a trace has
    no pipeline, so the flags feed the current-modulation model and a
    flush is a counted no-op.
    """

    def __init__(self):
        self.fus = _UnitFlags()
        self.dl1 = _UnitFlags()
        self.il1 = _UnitFlags()
        self.flushes = 0

    def flush_pipeline(self):
        self.flushes += 1

    def gated_weight(self):
        return ((GROUP_WEIGHTS["fu"] if self.fus.gated else 0.0)
                + (GROUP_WEIGHTS["dl1"] if self.dl1.gated else 0.0)
                + (GROUP_WEIGHTS["il1"] if self.il1.gated else 0.0))

    def phantom_weight(self):
        return ((GROUP_WEIGHTS["fu"] if self.fus.phantom else 0.0)
                + (GROUP_WEIGHTS["dl1"] if self.dl1.phantom else 0.0)
                + (GROUP_WEIGHTS["il1"] if self.il1.phantom else 0.0))


def modulated_current(sample, machine, floor, ceiling):
    """The actuated current for this cycle's trace sample."""
    gated = machine.gated_weight()
    if gated:
        return floor + (1.0 - gated) * (sample - floor)
    phantom = machine.phantom_weight()
    if phantom:
        return sample + phantom * (ceiling - sample)
    return sample


def replay_trace(trace, design, cycles, warmup=0, delay=None, error=0.0,
                 actuator_kind="fu_dl1_il1", seed=0, stuck_cycles=500,
                 pdn_sim=None, force_lockstep=False):
    """Replay a stored trace; returns the worker-shaped result dict.

    Args:
        trace: a validated :class:`~repro.traces.schema.Trace`.
        design: a solved
            :class:`~repro.core.design.VoltageControlDesign`.
        cycles: replay window length (capped at what the trace holds
            past the warm-up skip).
        warmup: head cycles to skip before the timed window.
        delay / error / actuator_kind / seed / stuck_cycles: the
            controller knobs, exactly as a run-kind job spells them;
            ``delay=None`` replays uncontrolled.
        pdn_sim: a reusable :class:`PdnSimulator` for this design
            (reset here; built fresh when omitted).
        force_lockstep: keep the scalar per-cycle path for an
            uncontrolled replay (bitwise-parity tests).

    The result matches :func:`~repro.orchestrator.worker.execute_spec`
    shape; ``committed``/``ipc`` are 0 -- a trace carries no committed
    instructions.

    Raises:
        TraceReplayError: clock mismatch, or the trace is shorter
            than the warm-up skip.
    """
    if float(trace.clock_hz) != float(design.config.clock_hz):
        raise TraceReplayError(
            "trace %s is sampled at %g Hz but the design clocks at "
            "%g Hz; re-sample the trace at the design clock"
            % (trace.name or trace.content_hash()[:12], trace.clock_hz,
               design.config.clock_hz))
    currents = trace.currents(nominal_volts=NOMINAL_VOLTAGE)
    warmup = int(warmup)
    if warmup >= currents.size:
        raise TraceReplayError(
            "trace %s holds %d samples, not more than the %d-cycle "
            "warm-up skip" % (trace.name or trace.content_hash()[:12],
                              currents.size, warmup))
    window = currents[warmup:warmup + int(cycles)]
    if pdn_sim is None:
        pdn_sim = PdnSimulator(
            DiscretePdn(design.pdn, clock_hz=design.config.clock_hz))
    # The first sample is the equilibrium point, matching how
    # DiscretePdn.simulate seeds its initial state from current[0].
    saved_watchdog = pdn_sim.watchdog
    pdn_sim.watchdog = None
    pdn_sim.reset(initial_current=float(window[0]))
    counter = EmergencyCounter()
    cycle_time = design.config.cycle_time
    controller = None
    if delay is not None:
        thresholds = design.thresholds(delay=delay, error=error,
                                       actuator_kind=actuator_kind)
        sensor = ThresholdSensor(thresholds.v_low, thresholds.v_high,
                                 delay=thresholds.delay,
                                 error=thresholds.error, seed=seed)
        controller = ThresholdController(
            sensor, actuator=Actuator(actuator_kind),
            monitor=PlausibilityMonitor(stuck_cycles=stuck_cycles))
    try:
        if controller is None and not force_lockstep:
            voltages = pdn_sim.run(window)
            counter.observe_array(voltages)
            powers = window * NOMINAL_VOLTAGE
            energy = float(np.cumsum(np.concatenate(
                ([0.0], powers * cycle_time)))[-1])
        else:
            machine = TraceMachine()
            floor = float(window.min())
            ceiling = float(window.max())
            energy = 0.0
            for sample in window.tolist():
                if controller is not None:
                    current = modulated_current(sample, machine, floor,
                                                ceiling)
                else:
                    current = sample
                voltage = pdn_sim.step(current)
                power = current * NOMINAL_VOLTAGE
                energy += power * cycle_time
                counter.observe(voltage)
                if controller is not None:
                    controller.step(machine, voltage, current)
    finally:
        pdn_sim.watchdog = saved_watchdog
        if controller is not None:
            controller.actuator.release(machine)
    return {
        "status": "ok",
        "error": None,
        "cycles": int(window.size),
        "committed": 0,
        "ipc": 0.0,
        "energy": energy,
        "emergencies": counter.summary(),
        "controller": (controller.summary()
                       if controller is not None else None),
    }
