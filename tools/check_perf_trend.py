#!/usr/bin/env python3
"""Diff the latest two perf-trend records and flag regressions.

``bench_perf_simulator.py --emit`` appends one per-commit record to
``benchmarks/results/perf_trend.jsonl``; this tool compares the newest
record against the one before it and warns when a tracked
configuration's rate (``cycles_per_sec`` -- bigger is better) dropped
by more than the threshold.  CI runs it after the bench emit step.

Tracked configurations (the steady-state and controlled-cell numbers
an orchestrator worker actually pays, plus the batched replay-sweep
throughput): ``uncontrolled_steady_state_cell_swim``,
``controlled_cell_swim``, ``controlled_cell_spec_swim`` (the
speculative engine with metrics on -- a rollback-policy regression
shows up here even when the default key stays healthy), and
``replay_sweep_cells_swim`` (``cells_per_sec``).

Exit codes: 0 no regression (or fewer than two comparable records);
1 a regression beyond the threshold with ``--fail``; 2 usage error
(unreadable or malformed trend file).
"""

import argparse
import json
import sys

#: Configurations whose throughput CI watches.
TRACKED = ("uncontrolled_steady_state_cell_swim", "controlled_cell_swim",
           "controlled_cell_spec_swim", "replay_sweep_cells_swim")

#: Rate figures in bigger-is-better order of preference.
RATE_KEYS = ("cycles_per_sec", "samples_per_sec", "cells_per_sec")

DEFAULT_THRESHOLD = 0.10


def load_records(path):
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise ValueError("%s line %d: unparsable trend record"
                                 % (path, lineno))
            if not isinstance(record, dict) or "figures" not in record:
                raise ValueError("%s line %d: not a trend record"
                                 % (path, lineno))
            records.append(record)
    return records


def compare(previous, current, threshold):
    """Per-configuration regression report between two records.

    Returns ``(regressions, notes)``: regression strings beyond the
    threshold, and informational notes (new/missing configs, meta
    mismatches that make the numbers incomparable).
    """
    notes = []
    if previous.get("meta") != current.get("meta"):
        return [], ["bench meta changed (cycles/workload/seed); "
                    "skipping the comparison"]
    regressions = []
    for name in TRACKED:
        prev = previous["figures"].get(name)
        cur = current["figures"].get(name)
        if not prev or not cur:
            notes.append("%s: missing from %s record"
                         % (name, "previous" if not prev else "latest"))
            continue
        rate_key = next((key for key in RATE_KEYS if key in prev),
                        "samples_per_sec")
        prev_rate = prev.get(rate_key)
        cur_rate = cur.get(rate_key)
        if not prev_rate or not cur_rate:
            notes.append("%s: no %s figure" % (name, rate_key))
            continue
        drop = (prev_rate - cur_rate) / prev_rate
        if drop > threshold:
            regressions.append(
                "%s: %s dropped %.1f%% (%.3g -> %.3g; commit %s -> %s)"
                % (name, rate_key, 100 * drop, prev_rate, cur_rate,
                   previous.get("commit", "?")[:12],
                   current.get("commit", "?")[:12]))
    return regressions, notes


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trend", nargs="?",
                        default="benchmarks/results/perf_trend.jsonl",
                        help="trend JSONL written by bench_perf_"
                             "simulator --emit")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="fractional rate drop that counts as a "
                             "regression (default 0.10)")
    parser.add_argument("--fail", action="store_true",
                        help="exit 1 on regression instead of only "
                             "warning")
    args = parser.parse_args(argv)
    try:
        records = load_records(args.trend)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if len(records) < 2:
        print("perf trend: %d record(s) in %s; nothing to compare yet"
              % (len(records), args.trend))
        return 0
    regressions, notes = compare(records[-2], records[-1],
                                 args.threshold)
    for note in notes:
        print("perf trend: note: %s" % note)
    if regressions:
        for line in regressions:
            print("perf trend: WARNING: %s" % line)
        return 1 if args.fail else 0
    print("perf trend: no regression beyond %.0f%% across %d tracked "
          "configuration(s)" % (100 * args.threshold, len(TRACKED)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
