#!/usr/bin/env python
"""Validate a file against the Chrome trace-event JSON Object Format.

Usage: python tools/validate_chrome_trace.py TRACE.json [CAT ...]

Checks the structural contract Perfetto / ``chrome://tracing`` rely on
(top-level keys, per-event ``ph``/``pid``/``tid``/``name``, integer
``ts`` and a ``cat`` on non-metadata events, balanced begin/end
counts), plus — when category names are given — that each one appears
in the trace.  Exits non-zero with a message on the first violation;
used by the CI trace-smoke step.
"""

import json
import sys

KNOWN_PHASES = {"M", "B", "E", "i", "X", "C"}


def validate(trace, required_cats=()):
    """Raise ``AssertionError`` on the first structural violation."""
    assert isinstance(trace, dict), "top level must be a JSON object"
    assert "traceEvents" in trace, "missing traceEvents"
    events = trace["traceEvents"]
    assert isinstance(events, list) and events, "traceEvents empty"
    begins = ends = 0
    cats = set()
    for i, e in enumerate(events):
        where = "traceEvents[%d]" % i
        assert isinstance(e, dict), "%s not an object" % where
        assert e.get("ph") in KNOWN_PHASES, \
            "%s bad phase %r" % (where, e.get("ph"))
        assert isinstance(e.get("pid"), int), "%s bad pid" % where
        assert isinstance(e.get("tid"), int), "%s bad tid" % where
        assert isinstance(e.get("name"), str) and e["name"], \
            "%s bad name" % where
        if e["ph"] == "M":
            continue
        assert isinstance(e.get("ts"), int), "%s bad ts" % where
        assert isinstance(e.get("cat"), str) and e["cat"], \
            "%s missing cat" % where
        cats.add(e["cat"])
        if e["ph"] == "B":
            begins += 1
        elif e["ph"] == "E":
            ends += 1
    assert begins == ends, \
        "unbalanced windows: %d begins, %d ends" % (begins, ends)
    missing = sorted(set(required_cats) - cats)
    assert not missing, "required categories absent: %s (have: %s)" \
        % (", ".join(missing), ", ".join(sorted(cats)))
    return len(events), cats


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path, required = argv[1], argv[2:]
    with open(path) as fh:
        trace = json.load(fh)
    try:
        count, cats = validate(trace, required)
    except AssertionError as exc:
        print("%s: INVALID: %s" % (path, exc), file=sys.stderr)
        return 1
    print("%s: ok (%d events; categories: %s)"
          % (path, count, ", ".join(sorted(cats))))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
