#!/usr/bin/env python
"""Characterizing benchmark voltage behaviour (paper Section 3.3).

Runs a selection of the synthetic SPEC2000 profiles through the closed
loop with no controller and reports what Figure 10 and Table 2 report:
per-benchmark voltage distributions at 100% of target impedance, and
emergency counts as the package degrades to 400%.

Run:  python examples/spec_characterization.py [bench ...]
"""

import sys

from repro.analysis.distributions import VoltageDistribution
from repro.analysis.tables import format_table
from repro.core import VoltageControlDesign, get_profile

DEFAULT_BENCHMARKS = ("ammp", "gzip", "swim", "galgel")


def main(benchmarks):
    designs = {pct: VoltageControlDesign(impedance_percent=pct)
               for pct in (100, 200, 300, 400)}

    # Figure 10: voltage distributions at 100% of target impedance.
    print("voltage distributions at 100%% of target impedance (cf. Fig 10)")
    for name in benchmarks:
        result = designs[100].run(get_profile(name).stream(seed=11),
                                  delay=None, warmup_instructions=60000,
                                  max_cycles=20000, record_traces=True)
        dist = VoltageDistribution(result.voltages)
        print()
        print(dist.render(width=46, label=name))

    # Table 2: emergencies vs impedance.
    print("\n\nvoltage emergencies vs achieved impedance (cf. Table 2)")
    rows = []
    for name in benchmarks:
        row = [name]
        for pct in (100, 200, 300, 400):
            result = designs[pct].run(get_profile(name).stream(seed=11),
                                      delay=None,
                                      warmup_instructions=60000,
                                      max_cycles=20000)
            e = result.emergencies
            row.append("%d (%.3f%%)" % (e["emergency_cycles"],
                                        100 * e["frequency"]))
        rows.append(row)
    print(format_table(
        ["benchmark", "100%", "200%", "300%", "400%"], rows,
        title="Emergency cycles (frequency) per impedance level"))
    print("\nAs in the paper: meeting target impedance (100%) rules out "
          "emergencies by construction, and 200% is still clean for SPEC "
          "-- only the stressmark needs the controller there.")


if __name__ == "__main__":
    names = sys.argv[1:] or DEFAULT_BENCHMARKS
    main(names)
