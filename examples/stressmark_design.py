#!/usr/bin/env python
"""Designing a dI/dt stressmark (paper Section 3.2, Figures 8 and 9).

Shows the whole construction: why the loop has a divide trough and a
dependent store burst, how the auto-tuner sizes it to the package's
resonant period, how close its voltage damage comes to the theoretical
worst case (Figure 9), and where its spectral energy lands.

Run:  python examples/stressmark_design.py
"""

import numpy as np

from repro.analysis.tables import ascii_chart, sparkline
from repro.control.thresholds import worst_case_extremes
from repro.core import VoltageControlDesign, stressmark_stream, tune_stressmark
from repro.workloads.stressmark import body_length, stressmark_text


def main():
    design = VoltageControlDesign(impedance_percent=200.0)
    config = design.config
    pdn = design.pdn
    target_period = pdn.resonant_period_cycles(config.clock_hz)
    print("package: resonance %.0f MHz -> %.0f-cycle period at %.0f GHz"
          % (pdn.resonant_hz / 1e6, target_period, config.clock_hz / 1e9))

    # --- Auto-tune the loop to the resonant period -----------------------
    spec, measured = tune_stressmark(pdn, config)
    print("tuned loop: %d-instruction body, measured period %.1f cycles"
          % (body_length(spec), measured))
    print("\nloop skeleton (first lines):")
    for line in stressmark_text(spec).splitlines()[:10]:
        print("   ", line)
    print("    ... (%d burst groups follow)" % spec.burst_groups)

    # --- Measure its current and voltage ---------------------------------
    result = design.run(stressmark_stream(spec), delay=None,
                        warmup_instructions=2000, max_cycles=12000,
                        record_traces=True)
    currents = result.currents[6000:]
    voltages = result.voltages[6000:]
    print("\ncurrent draw:  %.1f .. %.1f A (machine envelope %.1f .. %.1f A)"
          % (currents.min(), currents.max(), design.i_min, design.i_max))
    print("two periods of current:  %s"
          % sparkline(currents[:int(2 * target_period)]))
    print("two periods of voltage:  %s"
          % sparkline(voltages[:int(2 * target_period)]))

    # --- Figure 9: stressmark vs the theoretical worst case --------------
    wc_min, wc_max = worst_case_extremes(pdn, design.i_min, design.i_max)
    print("\nFigure 9 comparison (voltage extremes at 200%% impedance):")
    print("  theoretical worst case: [%.4f, %.4f] V" % (wc_min, wc_max))
    print("  dI/dt stressmark:       [%.4f, %.4f] V"
          % (voltages.min(), voltages.max()))
    droop_fraction = (1.0 - voltages.min()) / (1.0 - wc_min)
    print("  stressmark reaches %.0f%% of the worst-case droop "
          "(severe, but not the true worst case -- as in the paper)"
          % (100 * droop_fraction))

    # --- Spectral check: energy concentrates at the resonance ------------
    signal = currents - currents.mean()
    spectrum = np.abs(np.fft.rfft(signal))
    freqs = np.fft.rfftfreq(signal.size, d=1.0 / config.clock_hz)
    peak = freqs[int(np.argmax(spectrum))]
    print("\nspectral peak of the current waveform: %.1f MHz "
          "(package resonance: %.1f MHz)" % (peak / 1e6,
                                             pdn.resonant_hz / 1e6))

    keep = freqs < 200e6
    print("\ncurrent spectrum (0-200 MHz):")
    print(ascii_chart({"|I(f)|": spectrum[keep]}, width=64,
                      height=10))


if __name__ == "__main__":
    main()
