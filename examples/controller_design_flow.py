#!/usr/bin/env python
"""The control-theoretic design flow (paper Section 4, Figure 13).

Walks the methodology step by step:

1. analyze the processor power model -> current envelope;
2. analyze the package -> resonance, target impedance;
3. solve voltage thresholds for a range of sensor delays (Table 3);
4. verify the solved design against the adversarial worst case;
5. compare actuator levers (why FU-only control struggles).

Run:  python examples/controller_design_flow.py
"""

from repro.analysis.tables import format_table
from repro.control.thresholds import (
    ControlInfeasibleError,
    solve_target_impedance,
    worst_case_extremes,
)
from repro.core import VoltageControlDesign


def main():
    design = VoltageControlDesign(impedance_percent=200.0)

    # Step 1: the processor's current envelope.
    print("step 1 - processor analysis")
    print("  current envelope: %.1f A (idle) .. %.1f A (max burst)"
          % (design.i_min, design.i_max))

    # Step 2: the package and its target impedance.
    target = solve_target_impedance(design.i_min, design.i_max)
    peak, _ = design.pdn.peak_impedance()
    print("\nstep 2 - package analysis")
    print("  target impedance: %.3f mOhm; this design uses %.3f mOhm (%g%%)"
          % (target * 1000, peak * 1000, design.impedance_percent))
    v_min, v_max = worst_case_extremes(design.pdn, design.i_min,
                                       design.i_max)
    print("  uncontrolled worst case at this impedance: [%.4f, %.4f] V "
          "-> control is required" % (v_min, v_max))

    # Step 3: Table 3 -- thresholds vs sensor delay.
    print("\nstep 3 - threshold solving (ideal actuator)")
    rows = []
    for delay in range(7):
        d = design.thresholds(delay=delay)
        rows.append([delay, "%.3f" % d.v_low, "%.3f" % d.v_high,
                     "%.0f" % d.window_mv])
    print(format_table(
        ["Delay (cycles)", "Low threshold (V)", "High threshold (V)",
         "Safe window (mV)"], rows,
        title="Voltage thresholds under delay, 200% impedance (cf. Table 3)"))

    # Step 4: verification -- the solved design's worst case is in spec.
    d2 = design.thresholds(delay=2)
    print("\nstep 4 - verification at delay 2")
    print("  controlled worst case: [%.4f, %.4f] V (spec: [0.95, 1.05])"
          % (d2.v_worst_low, d2.v_worst_high))

    # Step 5: actuator levers.
    print("\nstep 5 - actuator levers")
    rows = []
    for kind in ("fu", "fu_dl1", "fu_dl1_il1", "ideal"):
        i_reduce, i_boost = design.response_currents(kind)
        try:
            d = design.thresholds(delay=4, actuator_kind=kind)
            window = "%.0f mV" % d.window_mv
        except ControlInfeasibleError:
            window = "infeasible"
        rows.append([kind, "%.1f" % i_reduce, "%.1f" % i_boost, window])
    print(format_table(
        ["Actuator", "Reduce to (A)", "Boost to (A)",
         "Window @ delay 4"], rows))
    print("\nThe FU-only lever controls the least current -- the paper "
          "finds it unstable for controller delays of three or more.")


if __name__ == "__main__":
    main()
