#!/usr/bin/env python
"""Quickstart: eliminate the stressmark's voltage emergencies.

Builds the paper's system end to end -- Table 1 machine, Wattch-style
power model, 200%-of-target-impedance package -- then runs the dI/dt
stressmark twice: uncontrolled (voltage emergencies) and under a
threshold controller with a 2-cycle sensor (no emergencies), and prints
the cost of control.

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.core import VoltageControlDesign, stressmark_stream, tune_stressmark


def main():
    # 1. The design flow: analyze the machine, size the network at 200%
    #    of target impedance (a cheap package that needs help).
    design = VoltageControlDesign(impedance_percent=200.0)
    print("design:           ", design)
    print("target impedance x2, resonance %.0f MHz, Q %.1f"
          % (design.pdn.resonant_hz / 1e6, design.pdn.quality_factor))

    # 2. Build the dI/dt stressmark, auto-tuned to the package resonance.
    spec, period = tune_stressmark(design.pdn, design.config)
    print("stressmark:        %d divides, %d burst groups, period %.1f "
          "cycles (target %.1f)"
          % (spec.n_divides, spec.burst_groups, period,
             design.pdn.resonant_period_cycles(design.config.clock_hz)))

    # 3. Uncontrolled run: the stressmark drives the voltage out of spec.
    base = design.run(stressmark_stream(spec), delay=None,
                      warmup_instructions=2000, max_cycles=20000)
    e = base.emergencies
    print("\nuncontrolled:      %d emergency cycles (%.2f%%), "
          "voltage [%.4f, %.4f] V"
          % (e["emergency_cycles"], 100 * e["frequency"],
             e["v_min"], e["v_max"]))

    # 4. Controlled run: threshold controller, 2-cycle sensor, the
    #    coarse FU/DL1/IL1 actuator.
    ctrl = design.run(stressmark_stream(spec), delay=2,
                      actuator_kind="fu_dl1_il1",
                      warmup_instructions=2000, max_cycles=20000)
    e = ctrl.emergencies
    print("controlled:        %d emergency cycles, voltage [%.4f, %.4f] V"
          % (e["emergency_cycles"], e["v_min"], e["v_max"]))
    print("controller events: %d reduce cycles, %d boost cycles"
          % (ctrl.controller["reduce_cycles"],
             ctrl.controller["boost_cycles"]))

    # 5. The price of safety.
    print("\ncost of control:   %.1f%% performance, %.1f%% energy"
          % (performance_loss_percent(base, ctrl),
             energy_increase_percent(base, ctrl)))
    thresholds = design.thresholds(delay=2, actuator_kind="fu_dl1_il1")
    print("thresholds:        low %.3f V, high %.3f V (window %.0f mV)"
          % (thresholds.v_low, thresholds.v_high, thresholds.window_mv))


if __name__ == "__main__":
    main()
