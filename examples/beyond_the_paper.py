#!/usr/bin/env python
"""The paper's Section 6 future work, exercised (extensions tour).

Four directions the paper sketches, each implemented in this repo:

1. model validation -- a 4th-order board+package ladder vs the paper's
   second-order abstraction;
2. locality -- per-quadrant voltage droop that a global model misses;
3. alternative control -- a PD loop behind an ADC-style sensor vs the
   threshold controller;
4. recovery -- freeze-and-resume vs flush-and-replay actuation.

Run:  python examples/beyond_the_paper.py
"""

import numpy as np

from repro.analysis.metrics import performance_loss_percent
from repro.control.actuators import Actuator
from repro.control.controller import ThresholdController
from repro.control.loop import run_workload
from repro.control.pid import DigitizingSensor, PidController, default_gains
from repro.core import VoltageControlDesign, stressmark_stream, tune_stressmark
from repro.pdn.ladder import LadderParameters, LadderPdn, fit_second_order
from repro.pdn.quadrants import (
    QuadrantParameters,
    QuadrantPdn,
    split_power,
)
from repro.pdn.discrete import DiscretePdn
from repro.pdn.waveforms import worst_case_waveform
from repro.power.model import PowerModel
from repro.uarch.core import Machine


def validate_models():
    print("1. cross-level model validation (ladder vs second order)")
    ladder = LadderPdn(LadderParameters.representative())
    fit = fit_second_order(ladder)
    board_f, package_f = sorted(ladder.resonances())
    print("   ladder resonances: board %.0f kHz, package %.1f MHz"
          % (board_f / 1e3, package_f / 1e6))
    wave = worst_case_waveform(fit, 17.0, 60.0, n_periods=10)
    v_ladder = ladder.discretize().simulate(wave, initial_current=17.0)
    v_fit = DiscretePdn(fit).simulate(wave, initial_current=17.0)
    print("   resonant-band droop: ladder %.1f mV, 2nd-order %.1f mV "
          "-> the early-stage abstraction holds in the band that matters"
          % ((1.0 - v_ladder.min()) * 1e3, (1.0 - v_fit.min()) * 1e3))


def local_droop(design, spec):
    print("\n2. locality: per-quadrant droop on the stressmark")
    machine = Machine(design.config, stressmark_stream(spec))
    model = PowerModel(design.config, design.power_model.params)
    machine.fast_forward(2000)
    rows = []
    machine.run(max_cycles=6000, cycle_hook=lambda m, a: rows.append(
        split_power(model.breakdown(a))))
    currents = np.array(rows)
    qpdn = QuadrantPdn(QuadrantParameters.representative())
    local = qpdn.discretize().simulate(currents,
                                       initial_current=currents[0])
    uniform = np.repeat(currents.sum(axis=1)[:, None] / 4.0, 4, axis=1)
    spread = qpdn.discretize().simulate(uniform, initial_current=uniform[0])
    print("   per-quadrant minima: %s V"
          % np.round(local.min(axis=0), 4).tolist())
    print("   a die-average model would report %.4f V -- %.1f mV "
          "optimistic for the hottest quadrant"
          % (spread.min(), (spread.min() - local.min()) * 1e3))


def pid_vs_threshold(design, spec):
    print("\n3. PD control vs threshold control (stressmark)")
    base = design.run(stressmark_stream(spec), delay=None,
                      warmup_instructions=2000, max_cycles=10000)
    threshold = design.run(stressmark_stream(spec), delay=2,
                           actuator_kind="fu_dl1_il1",
                           warmup_instructions=2000, max_cycles=10000)
    kp, ki, kd = default_gains(design.pdn, design.i_min, design.i_max)

    def factory(machine, power_model):
        return PidController(kp, ki, kd,
                             sensor=DigitizingSensor(bits=6, delay=3))
    pid = run_workload(stressmark_stream(spec), design.pdn,
                       config=design.config, controller_factory=factory,
                       warmup_instructions=2000, max_cycles=10000)
    for name, r in (("threshold", threshold), ("PD loop ", pid)):
        print("   %s: %d emergencies, %.1f%% perf loss"
              % (name, r.emergencies["emergency_cycles"],
                 performance_loss_percent(base, r)))
    print("   both protect; only the threshold design carries a "
          "worst-case guarantee")


def recovery_policies(design, spec):
    print("\n4. actuation recovery: freeze vs flush")
    base = design.run(stressmark_stream(spec), delay=None,
                      warmup_instructions=2000, max_cycles=10000)
    thresholds = design.thresholds(delay=4, actuator_kind="fu_dl1_il1")
    for recovery in ("freeze", "flush"):
        def factory(machine, power_model, recovery=recovery):
            return ThresholdController.from_design(
                thresholds, actuator=Actuator("fu_dl1_il1",
                                              recovery=recovery))
        r = run_workload(stressmark_stream(spec), design.pdn,
                         config=design.config, controller_factory=factory,
                         warmup_instructions=2000, max_cycles=10000)
        print("   %s: %d emergencies, %.1f%% perf loss, %d flushes"
              % (recovery, r.emergencies["emergency_cycles"],
                 performance_loss_percent(base, r),
                 r.machine_stats.flushes))


def main():
    design = VoltageControlDesign(impedance_percent=200.0)
    spec, _ = tune_stressmark(design.pdn, design.config)
    validate_models()
    local_droop(design, spec)
    pid_vs_threshold(design, spec)
    recovery_policies(design, spec)


if __name__ == "__main__":
    main()
