"""Figure 11: a threshold controller in action.

Captures a voltage trace segment around a would-be emergency on the
stressmark: uncontrolled, the voltage crosses the 5% bound; with the
controller, the dip is caught at the low threshold and recovers.
"""

import numpy as np

from repro.analysis.tables import sparkline

from harness import design_at, once, report, run_stressmark


def _build():
    design = design_at(200)
    thresholds = design.thresholds(delay=2)
    base = run_stressmark(percent=200, record_traces=True)
    ctrl = run_stressmark(percent=200, delay=2, record_traces=True)

    v_base = base.voltages
    v_ctrl = ctrl.voltages
    # Find the deepest uncontrolled dip and show the window around it.
    dip = int(np.argmin(v_base))
    lo = max(0, dip - 90)
    hi = min(v_base.size, dip + 90)
    window_base = v_base[lo:hi]
    window_ctrl = v_ctrl[lo:hi] if v_ctrl.size >= hi else v_ctrl[-180:]

    lines = ["Figure 11: threshold controller in action "
             "(stressmark, 200% impedance, delay 2)"]
    lines.append("")
    lines.append("thresholds: low %.3f V / high %.3f V; spec [0.95, 1.05]"
                 % (thresholds.v_low, thresholds.v_high))
    lines.append("")
    lines.append("uncontrolled: %s" % sparkline(window_base))
    lines.append("  min %.4f V -> %s"
                 % (window_base.min(),
                    "EMERGENCY" if window_base.min() < 0.95 else "ok"))
    lines.append("controlled:   %s" % sparkline(window_ctrl))
    lines.append("  min %.4f V -> %s"
                 % (window_ctrl.min(),
                    "EMERGENCY" if window_ctrl.min() < 0.95 else "ok"))
    lines.append("")
    lines.append("controller activity over the run: %d reduce cycles, "
                 "%d boost cycles, %d transitions"
                 % (ctrl.controller["reduce_cycles"],
                    ctrl.controller["boost_cycles"],
                    ctrl.controller["transitions"]))
    lines.append("emergency cycles: %d uncontrolled -> %d controlled"
                 % (base.emergencies["emergency_cycles"],
                    ctrl.emergencies["emergency_cycles"]))
    return "\n".join(lines)


def bench_fig11_controller_trace(benchmark):
    text = once(benchmark, _build)
    report("fig11_controller_trace", text)
    assert "controlled" in text
