"""Telemetry overhead (pytest-benchmark used for actual timing).

The telemetry contract (DESIGN.md section 9) promises that the
disabled defaults cost nothing measurable on the closed loop's hot
path: every per-cycle site binds its instruments once in ``__init__``
and pays a single ``is not None`` test per cycle when telemetry is
off.  These benches time the same closed-loop run three ways --
without telemetry, with the null bundle passed explicitly, and fully
instrumented -- so a regression that puts work back on the disabled
path shows up as a gap between the first two rows.
"""

from repro.control.loop import ClosedLoopSimulation
from repro.power.model import PowerModel
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.uarch.core import Machine

from harness import design_at, stressmark, tuned_stressmark_spec

CYCLES = 2000


def _closed_loop(design, telemetry=None):
    machine = Machine(design.config, stressmark())
    machine.fast_forward(2000)
    factory = design.controller_factory(delay=2,
                                        actuator_kind="fu_dl1_il1")
    model = PowerModel(design.config, design.power_model.params)
    return ClosedLoopSimulation(machine, model, design.pdn,
                                controller=factory(machine, model),
                                telemetry=telemetry)


def _timed_run(benchmark, design, telemetry):
    def run():
        loop = _closed_loop(design, telemetry=telemetry)
        return loop.run(max_cycles=CYCLES).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_loop_telemetry_off(benchmark):
    design = design_at(200)
    tuned_stressmark_spec(200)
    _timed_run(benchmark, design, None)


def bench_perf_loop_telemetry_null_bundle(benchmark):
    design = design_at(200)
    tuned_stressmark_spec(200)
    _timed_run(benchmark, design, NULL_TELEMETRY)


def bench_perf_loop_telemetry_full(benchmark):
    design = design_at(200)
    tuned_stressmark_spec(200)
    telemetry = Telemetry.full()

    def run():
        telemetry.trace.clear()
        loop = _closed_loop(design, telemetry=telemetry)
        return loop.run(max_cycles=CYCLES).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES
    assert telemetry.trace.events(), "instrumented run recorded nothing"
