"""Figure 10: voltage distributions at 100% of target impedance.

Regenerates the distribution panel for the full synthetic SPEC2000 suite
plus the stressmark: per-benchmark voltage histograms, with ammp's
stability and galgel/swim's spread called out as in the paper.
"""

from repro.analysis.distributions import VoltageDistribution
from repro.analysis.tables import format_table, sparkline
from repro.workloads.spec import SPEC2000

from harness import once, report, run_spec, run_stressmark


def _build():
    rows = []
    spreads = {}
    for name in sorted(SPEC2000):
        result = run_spec(name, percent=100, record_traces=True)
        dist = VoltageDistribution(result.voltages)
        spreads[name] = dist
        rows.append([name, "%.4f" % dist.mean, "%.1f" % (dist.std * 1e3),
                     "%.1f" % dist.spread_mv,
                     sparkline(dist.fractions)])
    sm = run_stressmark(percent=100, record_traces=True)
    sm_dist = VoltageDistribution(sm.voltages)
    rows.append(["stressmark", "%.4f" % sm_dist.mean,
                 "%.1f" % (sm_dist.std * 1e3),
                 "%.1f" % sm_dist.spread_mv, sparkline(sm_dist.fractions)])

    table = format_table(
        ["Benchmark", "Mean (V)", "Std (mV)", "Spread (mV)",
         "Distribution (0.94..1.06 V)"],
        rows, title="Figure 10: voltage distributions at 100% of target "
                    "impedance")
    ammp = spreads["ammp"]
    galgel = spreads["galgel"]
    notes = ("ammp std %.1f mV (stable, as the paper observes) vs galgel "
             "std %.1f mV (wide); the stressmark is the widest at "
             "%.1f mV spread"
             % (ammp.std * 1e3, galgel.std * 1e3, sm_dist.spread_mv))
    return table + "\n\n" + notes


def bench_fig10_voltage_distributions(benchmark):
    text = once(benchmark, _build)
    report("fig10_distributions", text)
    assert "galgel" in text
