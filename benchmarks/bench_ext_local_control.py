"""Extension: closing the loop per quadrant (Section 6's local control).

The locality bench (`bench_ext_quadrants.py`) shows hot quadrants droop
below the die average; this bench shows why that matters and what to do
about it.  On a package severity where quadrants go out of spec while
the *die-average* voltage never does, it compares:

* no control (per-quadrant emergencies the global view misses);
* a controller fed by the die-average voltage (the paper's global
  formulation) -- blind to the local events;
* local sensing with global actuation (any quadrant's sensor fires the
  whole FU/DL1/IL1 group);
* local sensing with local actuation (each quadrant gates its own
  resident unit group).
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.control.local import (
    LocalClosedLoopSimulation,
    LocalThresholdController,
)
from repro.control.sensor import ThresholdSensor, VoltageLevel
from repro.pdn.quadrants import QuadrantParameters, QuadrantPdn
from repro.power.model import PowerModel
from repro.uarch.core import Machine

from harness import design_at, once, report, stressmark, tuned_stressmark_spec

#: Package severity where local emergencies occur but die-average ones
#: do not (found by sweep; see the quadrant tests).
PEAK = 3.6e-3
DELAY = 2
CYCLES = 10000


class _AverageSensingController:
    """The paper's global controller fed by the die-average voltage."""

    def __init__(self, v_low, v_high, delay):
        self.sensor = ThresholdSensor(v_low, v_high, delay=delay)
        self.reduce_cycles = 0
        self.boost_cycles = 0
        self.transitions = 0

    def step(self, machine, quadrant_voltages):
        level = self.sensor.observe(float(np.mean(quadrant_voltages))).level
        low = level is VoltageLevel.LOW
        high = level is VoltageLevel.HIGH
        for unit in (machine.fus, machine.dl1, machine.il1):
            unit.gated = low
            unit.phantom = high
        if low:
            self.reduce_cycles += 1
        elif high:
            self.boost_cycles += 1

    def summary(self):
        return {"mode": "average", "reduce_cycles": self.reduce_cycles,
                "boost_cycles": self.boost_cycles,
                "transitions": self.transitions}


def _run(design, controller):
    machine = Machine(design.config, stressmark())
    model = PowerModel(design.config, design.power_model.params)
    machine.fast_forward(2000)
    loop = LocalClosedLoopSimulation(
        machine, model,
        QuadrantPdn(QuadrantParameters.representative(package_peak=PEAK)),
        controller=controller)
    result = loop.run(max_cycles=CYCLES)
    return loop, result


def _build():
    design = design_at(200)
    tuned_stressmark_spec(200)
    thresholds = design.thresholds(delay=DELAY, actuator_kind="fu_dl1_il1")

    def make(mode):
        if mode is None:
            return None
        if mode == "average":
            return _AverageSensingController(thresholds.v_low,
                                             thresholds.v_high, DELAY)
        return LocalThresholdController(thresholds.v_low, thresholds.v_high,
                                        delay=DELAY, mode=mode)

    rows = []
    for label, mode in (("uncontrolled", None),
                        ("die-average sensing (paper's view)", "average"),
                        ("local sensing, global actuation", "global"),
                        ("local sensing, local actuation", "local")):
        loop, result = _run(design, make(mode))
        per_q = [q["emergency_cycles"] for q in result["quadrants"]]
        rows.append([label, str(per_q), result["average"]["emergency_cycles"],
                     result["committed"]])
    table = format_table(
        ["Controller", "Per-quadrant emergencies", "Die-average emergencies",
         "Instructions"], rows,
        title="Extension: local voltage control (stressmark on a "
              "%.1f mOhm quadrant network, delay %d)" % (PEAK * 1e3, DELAY))
    notes = ("measured outcome: the die-average sensor never sees an "
             "emergency on this network, so the globally-sensed "
             "controller (the paper's formulation) leaves local ones in "
             "place.  Local sensing with *global* actuation eliminates "
             "them all.  Purely local actuation does not: the window "
             "quadrant -- where the emergencies live -- hosts no "
             "gateable unit group, so its only relief comes through the "
             "shared package node from its neighbours.  The design "
             "lesson for Section 6's direction: sense locally, but "
             "actuate at least as broadly as the floorplan's electrical "
             "coupling.")
    return table + "\n\n" + notes


def bench_ext_local_control(benchmark):
    text = once(benchmark, _build)
    report("ext_local_control", text)
    assert "quadrant" in text
