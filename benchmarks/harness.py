"""Shared infrastructure for the table/figure benches.

Each ``bench_*.py`` regenerates one table or figure from the paper's
evaluation: it computes the same rows/series the paper reports, prints
them (run pytest with ``-s`` to see them live), and writes them to
``benchmarks/results/<name>.txt``.  The ``benchmark`` fixture wraps the
computation so ``pytest benchmarks/ --benchmark-only`` also reports how
long each experiment takes to regenerate.

Run lengths are scaled for laptop turnaround (the paper simulates 200M
instructions per benchmark; see DESIGN.md section 6).  Set
``REPRO_BENCH_SCALE`` to an integer >1 to lengthen every timed region
proportionally.

Solved designs and tuned stressmark specs come from the process-wide
caches in :mod:`repro.core.factory` (shared with the fault campaign and
orchestrator workers).  Grid-shaped benches submit their cells through
:func:`run_grid`, so independent cells run across ``REPRO_JOBS``
workers and finished cells are memoized on disk (``REPRO_CACHE_DIR``)
-- an unchanged bench re-run is served entirely from cache.
"""

import os
import pathlib

from repro.core import design_at, get_profile, tuned_stressmark_spec
from repro.orchestrator import JobSpec, ResultCache, Runner
from repro.workloads.stressmark import stressmark_stream

#: Scale knob for every timed region.
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))

#: Timed cycles for per-workload closed-loop runs.
RUN_CYCLES = 12000 * SCALE

#: Functional fast-forward before each timed region.
WARMUP_INSTRUCTIONS = 60000

#: Where benches drop their rendered tables.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's controller-study benchmarks (Section 4.4).
ACTIVE = ("swim", "mgrid", "gcc", "galgel", "facerec", "sixtrack", "eon",
          "art")

#: Deterministic seed for every workload stream.
SEED = 11


def uncontrolled_spec(name, percent=200, cycles=None):
    """A :class:`JobSpec` for one uncontrolled characterization cell."""
    return JobSpec(workload=name, cycles=cycles or RUN_CYCLES,
                   warmup_instructions=(2000 if name == "stressmark"
                                        else WARMUP_INSTRUCTIONS),
                   seed=SEED, impedance_percent=float(percent))


def run_grid(specs, jobs=None):
    """Run a batch of specs through the shared orchestrator.

    Returns the per-cell result dicts in spec order.  Cells hit the
    content-addressed cache when their spec (and the code version) is
    unchanged, so bench re-runs only simulate what moved.
    """
    runner = Runner(jobs=jobs, cache=ResultCache())
    return [outcome.result for outcome in runner.run(specs)]


def spec_stream(name):
    """A fresh stream for a SPEC profile (deterministic)."""
    return get_profile(name).stream(seed=SEED)


def stressmark(percent=200):
    """A fresh stream for the tuned stressmark."""
    return stressmark_stream(tuned_stressmark_spec(percent))


def run_spec(name, percent=200, delay=None, error=0.0,
             actuator_kind="ideal", cycles=None, record_traces=False):
    """One closed-loop run of a SPEC profile."""
    return design_at(percent).run(
        spec_stream(name), delay=delay, error=error,
        actuator_kind=actuator_kind,
        warmup_instructions=WARMUP_INSTRUCTIONS,
        max_cycles=cycles or RUN_CYCLES, record_traces=record_traces)


def run_stressmark(percent=200, delay=None, error=0.0,
                   actuator_kind="ideal", cycles=None, record_traces=False):
    """One closed-loop run of the stressmark."""
    return design_at(percent).run(
        stressmark(percent), delay=delay, error=error,
        actuator_kind=actuator_kind, warmup_instructions=2000,
        max_cycles=cycles or RUN_CYCLES, record_traces=record_traces)


def report(name, text):
    """Print a rendered table/figure and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % name)
    path.write_text(text + "\n")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
