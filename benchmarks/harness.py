"""Shared infrastructure for the table/figure benches.

Each ``bench_*.py`` regenerates one table or figure from the paper's
evaluation: it computes the same rows/series the paper reports, prints
them (run pytest with ``-s`` to see them live), and writes them to
``benchmarks/results/<name>.txt``.  The ``benchmark`` fixture wraps the
computation so ``pytest benchmarks/ --benchmark-only`` also reports how
long each experiment takes to regenerate.

Run lengths are scaled for laptop turnaround (the paper simulates 200M
instructions per benchmark; see DESIGN.md section 6).  Set
``REPRO_BENCH_SCALE`` to an integer >1 to lengthen every timed region
proportionally.
"""

import functools
import os
import pathlib

from repro.core import VoltageControlDesign, get_profile, tune_stressmark
from repro.workloads.stressmark import stressmark_stream

#: Scale knob for every timed region.
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))

#: Timed cycles for per-workload closed-loop runs.
RUN_CYCLES = 12000 * SCALE

#: Functional fast-forward before each timed region.
WARMUP_INSTRUCTIONS = 60000

#: Where benches drop their rendered tables.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's controller-study benchmarks (Section 4.4).
ACTIVE = ("swim", "mgrid", "gcc", "galgel", "facerec", "sixtrack", "eon",
          "art")

#: Deterministic seed for every workload stream.
SEED = 11


@functools.lru_cache(maxsize=None)
def design_at(percent):
    """Cached :class:`VoltageControlDesign` for an impedance level."""
    return VoltageControlDesign(impedance_percent=float(percent))


@functools.lru_cache(maxsize=None)
def tuned_stressmark_spec(percent=200):
    """Cached stressmark spec tuned at an impedance level."""
    design = design_at(percent)
    spec, _ = tune_stressmark(design.pdn, design.config)
    return spec


def spec_stream(name):
    """A fresh stream for a SPEC profile (deterministic)."""
    return get_profile(name).stream(seed=SEED)


def stressmark(percent=200):
    """A fresh stream for the tuned stressmark."""
    return stressmark_stream(tuned_stressmark_spec(percent))


def run_spec(name, percent=200, delay=None, error=0.0,
             actuator_kind="ideal", cycles=None, record_traces=False):
    """One closed-loop run of a SPEC profile."""
    return design_at(percent).run(
        spec_stream(name), delay=delay, error=error,
        actuator_kind=actuator_kind,
        warmup_instructions=WARMUP_INSTRUCTIONS,
        max_cycles=cycles or RUN_CYCLES, record_traces=record_traces)


def run_stressmark(percent=200, delay=None, error=0.0,
                   actuator_kind="ideal", cycles=None, record_traces=False):
    """One closed-loop run of the stressmark."""
    return design_at(percent).run(
        stressmark(percent), delay=delay, error=error,
        actuator_kind=actuator_kind, warmup_instructions=2000,
        max_cycles=cycles or RUN_CYCLES, record_traces=record_traces)


def report(name, text):
    """Print a rendered table/figure and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / ("%s.txt" % name)
    path.write_text(text + "\n")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
