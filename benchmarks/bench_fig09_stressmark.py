"""Figure 9: the dI/dt stressmark vs the theoretical worst case.

Runs the tuned stressmark through the full pipeline (cycle simulator ->
power model -> PDN) at 200% impedance and compares its voltage damage
against the maximum-height resonant square wave: severe, but short of
the true worst case.
"""

import numpy as np

from repro.analysis.tables import format_table, sparkline
from repro.control.thresholds import worst_case_extremes

from harness import design_at, once, report, run_stressmark


def _build():
    design = design_at(200)
    wc_min, wc_max = worst_case_extremes(design.pdn, design.i_min,
                                         design.i_max)
    result = run_stressmark(percent=200, record_traces=True)
    v = result.voltages[result.cycles // 2:]
    i = result.currents[result.cycles // 2:]
    period = int(round(design.pdn.resonant_period_cycles()))

    rows = [
        ["theoretical worst case", "%.4f" % wc_min, "%.4f" % wc_max,
         "%.1f" % ((1.0 - wc_min) * 1e3)],
        ["dI/dt stressmark", "%.4f" % v.min(), "%.4f" % v.max(),
         "%.1f" % ((1.0 - v.min()) * 1e3)],
    ]
    table = format_table(
        ["Input", "Min V", "Max V", "Droop (mV)"], rows,
        title="Figure 9: maximum-height resonant pulse vs stressmark "
              "(200% impedance)")
    fraction = (1.0 - float(v.min())) / (1.0 - wc_min)
    lines = [table, ""]
    lines.append("stressmark reaches %.0f%% of the worst-case droop and "
                 "%s the 5%% specification"
                 % (100 * fraction,
                    "violates" if v.min() < 0.95 else "meets"))
    lines.append("")
    lines.append("current (2 periods):  %s"
                 % sparkline(i[:2 * period]))
    lines.append("voltage (2 periods):  %s"
                 % sparkline(v[:2 * period]))
    spectrum = np.abs(np.fft.rfft(i - i.mean()))
    freqs = np.fft.rfftfreq(i.size, d=design.config.cycle_time)
    lines.append("current spectral peak: %.1f MHz (resonance %.1f MHz)"
                 % (freqs[int(np.argmax(spectrum))] / 1e6,
                    design.pdn.resonant_hz / 1e6))
    return "\n".join(lines)


def bench_fig09_stressmark_vs_worst_case(benchmark):
    text = once(benchmark, _build)
    report("fig09_stressmark", text)
    assert "violates" in text
