"""Table 2: voltage emergencies on SPEC2000 vs achieved impedance.

Runs all 26 synthetic profiles uncontrolled at 100/200/300/400% of the
target impedance and reproduces the table's three rows: benchmarks with
emergencies, average emergency frequency, and maximum emergency
frequency.  Expected shape: clean at 100% and 200%, a single benchmark
at 300%, several at 400% with tiny frequencies.

The 104 cells are independent, so they go through the orchestrator:
they spread across ``REPRO_JOBS`` workers on a cold run and are served
from the result cache on a re-run.
"""

from repro.analysis.tables import format_table
from repro.workloads.spec import SPEC2000

from harness import once, report, run_grid, uncontrolled_spec

PERCENTS = (100, 200, 300, 400)


def _build():
    names = sorted(SPEC2000)
    # Rare-tail experiment: use a longer window than the default so
    # the 300%/400% crossings are resolvable.
    specs = [uncontrolled_spec(name, percent=pct, cycles=25000)
             for name in names for pct in PERCENTS]
    results = run_grid(specs)
    frequencies = {pct: [] for pct in PERCENTS}
    offenders = {pct: [] for pct in PERCENTS}
    for spec, result in zip(specs, results):
        emergencies = result["emergencies"]
        frequencies[int(spec.impedance_percent)].append(
            emergencies["frequency"])
        if emergencies["emergency_cycles"]:
            offenders[int(spec.impedance_percent)].append(spec.workload)

    rows = [
        ["Benchmarks w/ Voltage Emergencies"] +
        [len(offenders[pct]) for pct in PERCENTS],
        ["Emergency Frequency (Average)"] +
        ["%.5f%%" % (100 * sum(frequencies[pct]) / len(frequencies[pct]))
         for pct in PERCENTS],
        ["Emergency Frequency (Maximum)"] +
        ["%.5f%%" % (100 * max(frequencies[pct])) for pct in PERCENTS],
    ]
    table = format_table(
        [""] + ["%d%%" % p for p in PERCENTS], rows,
        title="Table 2: voltage emergencies on SPEC2000 vs percent of "
              "target impedance")
    notes = []
    for pct in PERCENTS:
        if offenders[pct]:
            notes.append("%d%%: %s" % (pct, ", ".join(offenders[pct])))
        else:
            notes.append("%d%%: none" % pct)
    return table + "\n\noffending benchmarks per level:\n  " + \
        "\n  ".join(notes)


def bench_table2_spec_emergencies(benchmark):
    text = once(benchmark, _build)
    report("table2_emergencies", text)
    assert "100%" in text
