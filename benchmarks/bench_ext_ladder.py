"""Extension: second-order abstraction vs two-stage ladder (Section 6).

"We consider the second-order linear models from this study to be
exceptionally appropriate ... [but] somewhat more abstract than the more
detailed circuit models that packaging engineers typically rely on";
the paper calls cross-level validation important future work.  This
bench performs it: a fourth-order board+package ladder is compared
against its second-order collapse on the inputs that matter for dI/dt.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.pdn.discrete import DiscretePdn
from repro.pdn.ladder import LadderParameters, LadderPdn, fit_second_order
from repro.pdn.waveforms import current_spike, worst_case_waveform

from harness import once, report


def _droops(ladder, fit, wave, start):
    v_ladder = ladder.discretize().simulate(wave, initial_current=start)
    v_fit = DiscretePdn(fit).simulate(wave, initial_current=start)
    vdd = fit.params.vdd
    return vdd - v_ladder.min(), vdd - v_fit.min()


def _build():
    ladder = LadderPdn(LadderParameters.representative())
    fit = fit_second_order(ladder)
    board_f, package_f = sorted(ladder.resonances())

    rows = []
    # Resonant square wave (the threshold solver's adversary).
    wave = worst_case_waveform(fit, 17.0, 60.0, n_periods=12)
    d_ladder, d_fit = _droops(ladder, fit, wave, 17.0)
    rows.append(["resonant square wave", "%.1f" % (d_ladder * 1e3),
                 "%.1f" % (d_fit * 1e3),
                 "%.0f%%" % (100 * abs(d_fit - d_ladder) / d_ladder)])
    # A single wide burst (Figure 4's stimulus).
    wave = current_spike(4000, 17.0, 60.0, start=100, width=30)
    d_ladder, d_fit = _droops(ladder, fit, wave, 17.0)
    rows.append(["30-cycle burst", "%.1f" % (d_ladder * 1e3),
                 "%.1f" % (d_fit * 1e3),
                 "%.0f%%" % (100 * abs(d_fit - d_ladder) / d_ladder)])
    # A sustained step long enough to engage the board stage.
    wave = current_spike(40000, 17.0, 60.0, start=100, width=39900)
    d_ladder, d_fit = _droops(ladder, fit, wave, 17.0)
    rows.append(["sustained step (board-stage sag)",
                 "%.1f" % (d_ladder * 1e3), "%.1f" % (d_fit * 1e3),
                 "%.0f%%" % (100 * abs(d_fit - d_ladder) / d_ladder)])

    table = format_table(
        ["Input", "Ladder droop (mV)", "2nd-order droop (mV)", "Error"],
        rows,
        title="Extension: cross-level model validation")
    freqs = np.array([1e5, 5e5, 5e6, 5e7, 1.5e8])
    imp_rows = [["%.2g" % f, "%.3f" % (ladder.impedance(f) * 1e3),
                 "%.3f" % (fit.impedance(f) * 1e3)] for f in freqs]
    imp = format_table(["Frequency (Hz)", "Ladder |Z| (mOhm)",
                        "2nd-order |Z| (mOhm)"], imp_rows)
    notes = ("ladder resonances: board %.2g Hz, package %.3g Hz.  In the "
             "package band -- the band that sets dI/dt behaviour -- the "
             "second-order model tracks the ladder closely, supporting "
             "the paper's early-stage abstraction; what it misses is the "
             "slow board-stage sag under sustained load, visible in the "
             "third row and the low-frequency impedance columns."
             % (board_f, package_f))
    return "\n\n".join([table, imp, notes])


def bench_ext_ladder_validation(benchmark):
    text = once(benchmark, _build)
    report("ext_ladder", text)
    assert "package band" in text
