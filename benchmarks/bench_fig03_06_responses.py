"""Figures 3-6: voltage responses to the canonical current stimuli.

* Fig 3 -- a narrow spike is absorbed (voltage stays in spec);
* Fig 4 -- a wide spike of the same height crosses the threshold;
* Fig 5 -- notching the wide spike (the controller's intervention)
  recovers the margin;
* Fig 6 -- a pulse train at the resonant frequency builds resonance:
  the second droop is deeper than the first.
"""

from repro.analysis.tables import format_table, sparkline
from repro.pdn.discrete import DiscretePdn
from repro.pdn.waveforms import current_spike, notched_spike, pulse_train

from harness import design_at, once, report

BASE, PEAK = 17.0, 60.0


def _respond(discrete, trace):
    v = discrete.simulate(trace, initial_current=BASE)
    return float(v.min()), v


def _build():
    # The calibrated 200%-of-target network: the same design point every
    # other experiment runs on (an arbitrary worse network would make
    # even the narrow spike cross, muddying Figure 3's point).
    pdn = design_at(200).pdn
    discrete = DiscretePdn(pdn)
    period = int(round(pdn.resonant_period_cycles()))
    n = 6 * period

    narrow = current_spike(n, BASE, PEAK, start=60, width=5)
    wide = current_spike(n, BASE, PEAK, start=60, width=30)
    notched = notched_spike(n, BASE, PEAK, start=60, width=30,
                            notch_start=8, notch_width=12)
    train = pulse_train(n, BASE, PEAK, start=60, pulse_width=period // 2,
                        period=period, n_pulses=2)

    rows = []
    charts = []
    for fig, label, trace in [
            ("Fig 3", "narrow spike (5 cycles)", narrow),
            ("Fig 4", "wide spike (30 cycles)", wide),
            ("Fig 5", "notched wide spike", notched),
            ("Fig 6", "resonant pulse train", train)]:
        v_min, v = _respond(discrete, trace)
        rows.append([fig, label, "%.4f" % v_min,
                     "yes" if v_min < 0.95 else "no"])
        charts.append("%s %-24s V: %s" % (fig, label,
                                          sparkline(v[40:40 + 3 * period])))

    # Fig 6's signature: the second pulse digs deeper than the first.
    _, v_train = _respond(discrete, train)
    first = float(v_train[60:60 + period].min())
    second = float(v_train[60 + period:60 + 2 * period].min())

    table = format_table(
        ["Figure", "Stimulus", "Min voltage (V)", "Emergency (<0.95)"],
        rows, title="Figures 3-6: responses at 200%% impedance "
                    "(current steps %g -> %g A)" % (BASE, PEAK))
    notes = ("Fig 6 resonance build-up: first droop %.4f V, second droop "
             "%.4f V (deeper by %.1f mV)"
             % (first, second, (first - second) * 1e3))
    return "\n".join([table, ""] + charts + ["", notes])


def bench_fig03_06_current_responses(benchmark):
    text = once(benchmark, _build)
    report("fig03_06_responses", text)
    assert "resonance build-up" in text
