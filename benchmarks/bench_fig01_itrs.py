"""Figure 1: relative supply-network impedance trends (ITRS roadmap).

Regenerates both series -- cost-performance and high-performance -- and
checks the paper's two headline observations: the ~2x-every-3-5-years
halving and the shrinking gap between segments.
"""

from repro.analysis.tables import ascii_chart, format_table
from repro.pdn.itrs import (
    halving_time_years,
    relative_impedance_trend,
    segment_gap_ratio,
)

from harness import once, report


def _build():
    years, cost, high = relative_impedance_trend()
    rows = [[y, c, h, c / h] for y, c, h in zip(years, cost, high)]
    table = format_table(
        ["Year", "Cost-performance", "High-performance", "Gap ratio"],
        rows, title="Figure 1: relative target impedance (2001 HP = 1.0)")
    chart = ascii_chart({"cost-perf": cost, "high-perf": high},
                        width=60, height=12)
    notes = (
        "halving time: cost-perf %.1f years, high-perf %.1f years "
        "(paper: 'roughly 2x every 3-5 years')\n"
        "gap ratio %0.2f (2001) -> %0.2f (2016): the segments converge"
        % (halving_time_years("cost_performance"),
           halving_time_years("high_performance"),
           segment_gap_ratio(years[0]), segment_gap_ratio(years[-1])))
    return "\n\n".join([table, chart, notes])


def bench_fig01_itrs_impedance_trends(benchmark):
    text = once(benchmark, _build)
    report("fig01_itrs", text)
    assert "halving" in text
