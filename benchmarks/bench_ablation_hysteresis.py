"""Ablation: sensor hysteresis vs pure comparison.

A real comparator dithering at a threshold chatters; a hysteresis band
holds each assertion until the voltage clearly recovers.  Holding
actuation longer never weakens the solved guarantee -- the question is
what it costs.  This bench sweeps the band width on the stressmark.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.control.actuators import Actuator
from repro.control.controller import ThresholdController
from repro.control.loop import run_workload
from repro.control.sensor import ThresholdSensor

from harness import design_at, once, report, run_stressmark, stressmark

DELAY = 2


def _run(design, hysteresis):
    thresholds = design.thresholds(delay=DELAY, actuator_kind="fu_dl1_il1")

    def factory(machine, power_model):
        sensor = ThresholdSensor(thresholds.v_low, thresholds.v_high,
                                 delay=DELAY, hysteresis=hysteresis)
        return ThresholdController(sensor, actuator=Actuator("fu_dl1_il1"))
    return run_workload(stressmark(), design.pdn, config=design.config,
                        power_params=design.power_model.params,
                        controller_factory=factory,
                        warmup_instructions=2000, max_cycles=12000)


def _build():
    design = design_at(200)
    base = run_stressmark(delay=None)
    rows = []
    for h_mv in (0, 2, 5, 10):
        result = _run(design, h_mv / 1000.0)
        rows.append([h_mv, result.emergencies["emergency_cycles"],
                     result.controller["transitions"],
                     "%.1f" % performance_loss_percent(base, result),
                     "%.1f" % energy_increase_percent(base, result)])
    table = format_table(
        ["Hysteresis (mV)", "Emergencies", "Controller transitions",
         "Perf loss (%)", "Energy incr (%)"], rows,
        title="Ablation: sensor hysteresis (stressmark, delay %d, "
              "200%% impedance)" % DELAY)
    notes = ("the guarantee holds at every band width.  Measured "
             "outcome: on the stressmark the transition count does not "
             "move -- its resonant swings blow straight through any "
             "realistic band, so each period contributes the same "
             "enter/exit pair -- while energy rises with the band (longer "
             "boost episodes).  Hysteresis earns its keep against "
             "*dithering* voltages (see the unit test that shows a >2x "
             "chatter reduction on a boundary-hugging trace), not against "
             "resonant ones.")
    return table + "\n\n" + notes


def bench_ablation_sensor_hysteresis(benchmark):
    text = once(benchmark, _build)
    report("ablation_hysteresis", text)
    assert "Hysteresis" in text
