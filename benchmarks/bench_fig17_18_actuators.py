"""Figures 17 and 18: actuator granularity vs delay.

Sweeps the three real actuators (FU, FU/DL1, FU/DL1/IL1) across
controller delays on the active SPEC benchmarks, reporting performance
loss and energy increase; the stressmark is checked at the extremes.
Expected shape: FU-only becomes infeasible/unstable at delay >= ~3,
while FU/DL1 and FU/DL1/IL1 hold SPEC losses under a few percent; the
stressmark pays ~6% at delay 0 rising toward ~20-25% at delay 5.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import ascii_chart, format_table
from repro.control.thresholds import ControlInfeasibleError

from harness import ACTIVE, design_at, once, report, run_spec, run_stressmark

ACTUATORS = ("fu", "fu_dl1", "fu_dl1_il1")
DELAYS = (0, 1, 2, 3, 4, 5)


def _spec_mean(metric, baselines, delay, kind):
    values = []
    for name in ACTIVE:
        controlled = run_spec(name, delay=delay, actuator_kind=kind)
        values.append(metric(baselines[name], controlled))
    return sum(values) / len(values)


def _build():
    design = design_at(200)
    baselines = {name: run_spec(name, delay=None) for name in ACTIVE}
    perf = {kind: [] for kind in ACTUATORS}
    energy = {kind: [] for kind in ACTUATORS}
    feasible = {kind: [] for kind in ACTUATORS}
    for kind in ACTUATORS:
        for delay in DELAYS:
            try:
                design.thresholds(delay=delay, actuator_kind=kind)
            except ControlInfeasibleError:
                feasible[kind].append(False)
                perf[kind].append(float("nan"))
                energy[kind].append(float("nan"))
                continue
            feasible[kind].append(True)
            perf[kind].append(_spec_mean(performance_loss_percent,
                                         baselines, delay, kind))
            energy[kind].append(_spec_mean(energy_increase_percent,
                                           baselines, delay, kind))

    rows = []
    for i, delay in enumerate(DELAYS):
        row = [delay]
        for kind in ACTUATORS:
            if feasible[kind][i]:
                row.append("%.2f / %.2f" % (perf[kind][i], energy[kind][i]))
            else:
                row.append("unstable")
        rows.append(row)
    table = format_table(
        ["Delay"] + ["%s (perf%% / energy%%)" % k for k in ACTUATORS],
        rows,
        title="Figures 17/18: actuator granularity, SPEC mean "
              "(200% impedance)")

    plot_perf = {k: [p for p, ok in zip(perf[k], feasible[k]) if ok]
                 for k in ACTUATORS}
    chart = ascii_chart(plot_perf, width=48, height=10)

    # Stressmark costs per actuator at the delay extremes: the FU-only
    # lever is weakest, so it pays the most to protect.
    sm_base = run_stressmark(delay=None)
    sm_rows = []
    for kind in ACTUATORS:
        cells = [kind]
        for delay in (0, 5):
            sm = run_stressmark(delay=delay, actuator_kind=kind)
            cells.append("%.1f%% / %.1f%% (emerg %d)"
                         % (performance_loss_percent(sm_base, sm),
                            energy_increase_percent(sm_base, sm),
                            sm.emergencies["emergency_cycles"]))
        sm_rows.append(cells)
    sm_table = format_table(
        ["Actuator", "delay 0 (perf/energy)", "delay 5 (perf/energy)"],
        sm_rows, title="Stressmark cost per actuator (emergencies "
                       "eliminated in every case)")

    fu_unstable_from = next((DELAYS[i] for i, ok in enumerate(feasible["fu"])
                             if not ok), None)
    fu_windows = [design.thresholds(delay=d, actuator_kind="fu").window_mv
                  for d in DELAYS if feasible["fu"][DELAYS.index(d)]]
    shape = ("shape check: FU-only %s -- its safe window collapses from "
             "%.0f to %.0f mV across the delay sweep and it pays the "
             "highest stressmark cost; coarse actuators keep SPEC mean "
             "perf loss at %.2f%% max"
             % ("infeasible from delay %s" % fu_unstable_from
                if fu_unstable_from is not None
                else "retains a guarantee at 200%% impedance (weaker than "
                     "the paper's outright instability, see EXPERIMENTS.md)",
                fu_windows[0], fu_windows[-1],
                max(max(perf["fu_dl1"]), max(perf["fu_dl1_il1"]))))
    return "\n\n".join([table, "Figure 17 (perf loss vs delay):\n" + chart,
                        sm_table, shape])


def bench_fig17_18_actuator_granularity(benchmark):
    text = once(benchmark, _build)
    report("fig17_18_actuators", text)
    assert "shape check" in text
