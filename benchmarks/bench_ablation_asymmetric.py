"""Ablation: asymmetric actuation (Section 6 future work).

"This asymmetry could exploit the fact that some CPU units are better
suited for easy clock-gating (for the more common voltage-low
emergencies) while other units are easier to control for phantom-
firings."  This bench compares the symmetric coarse actuator against an
asymmetric one that gates coarsely on lows but phantom-fires only the
functional units on highs, trading a narrower high-side lever for less
wasted energy per boost cycle.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.control.actuators import Actuator
from repro.control.controller import ThresholdController
from repro.control.loop import run_workload
from repro.control.thresholds import solve_thresholds

from harness import design_at, once, report, run_stressmark, stressmark


def _run_asymmetric(design, delay):
    # The high-side lever is FU-only; solve thresholds against the
    # weaker boost response so the guarantee still holds.
    _, i_boost = design.power_model.response_envelope(("fu",))
    i_reduce, _ = design.response_currents("fu_dl1_il1")
    thresholds = solve_thresholds(design.pdn, design.i_min, design.i_max,
                                  delay, i_reduce=i_reduce, i_boost=i_boost)

    def factory(machine, power_model):
        actuator = Actuator("fu_dl1_il1",
                            low_groups=("fu", "dl1", "il1"),
                            high_groups=("fu",))
        return ThresholdController.from_design(thresholds,
                                               actuator=actuator)
    return run_workload(stressmark(), design.pdn, config=design.config,
                        power_params=design.power_model.params,
                        controller_factory=factory,
                        warmup_instructions=2000, max_cycles=12000)


def _build():
    design = design_at(200)
    delay = 2
    base = run_stressmark(delay=None)
    symmetric = run_stressmark(delay=delay, actuator_kind="fu_dl1_il1")
    asymmetric = _run_asymmetric(design, delay)

    rows = []
    for label, result in [("symmetric fu_dl1_il1", symmetric),
                          ("asymmetric (low: all, high: fu)", asymmetric)]:
        rows.append([
            label,
            result.emergencies["emergency_cycles"],
            "%.2f" % performance_loss_percent(base, result),
            "%.2f" % energy_increase_percent(base, result),
            result.controller["reduce_cycles"],
            result.controller["boost_cycles"],
        ])
    table = format_table(
        ["Actuator", "Emergencies", "Perf loss (%)", "Energy incr (%)",
         "Reduce cycles", "Boost cycles"], rows,
        title="Ablation: asymmetric actuation on the stressmark "
              "(delay %d, 200%% impedance)" % delay)
    notes = ("Both designs hold the specification; the asymmetric "
             "variant phantom-fires a smaller unit group per boost "
             "cycle, at the cost of a more conservative high threshold "
             "(weaker lever).")
    return table + "\n\n" + notes


def bench_ablation_asymmetric_actuation(benchmark):
    text = once(benchmark, _build)
    report("ablation_asymmetric", text)
    assert "asymmetric" in text
