"""Figures 14 and 15: sensor delay vs performance and energy.

Sweeps sensor delay 0-6 cycles with the ideal actuator (the paper's
Section 4.4 methodology) over the eight voltage-active SPEC benchmarks
and the stressmark.  Expected shape: SPEC is nearly flat; the stressmark
degrades visibly as delay grows.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import ascii_chart, format_table

from harness import ACTIVE, once, report, run_spec, run_stressmark

DELAYS = tuple(range(7))


def _build():
    spec_baselines = {name: run_spec(name, delay=None) for name in ACTIVE}
    sm_baseline = run_stressmark(delay=None)

    spec_perf = []
    spec_energy = []
    sm_perf = []
    sm_energy = []
    for delay in DELAYS:
        perf = []
        energy = []
        for name in ACTIVE:
            controlled = run_spec(name, delay=delay)
            perf.append(performance_loss_percent(spec_baselines[name],
                                                 controlled))
            energy.append(energy_increase_percent(spec_baselines[name],
                                                  controlled))
        spec_perf.append(sum(perf) / len(perf))
        spec_energy.append(sum(energy) / len(energy))
        sm = run_stressmark(delay=delay)
        sm_perf.append(performance_loss_percent(sm_baseline, sm))
        sm_energy.append(energy_increase_percent(sm_baseline, sm))

    rows = [[d, "%.2f" % sp, "%.2f" % smp, "%.2f" % se, "%.2f" % sme]
            for d, sp, smp, se, sme in zip(DELAYS, spec_perf, sm_perf,
                                           spec_energy, sm_energy)]
    table = format_table(
        ["Delay", "SPEC perf loss (%)", "Stressmark perf loss (%)",
         "SPEC energy incr (%)", "Stressmark energy incr (%)"], rows,
        title="Figures 14/15: impact of sensor delay (ideal actuator, "
              "200% impedance)")
    chart14 = ascii_chart({"SPEC": spec_perf, "stressmark": sm_perf},
                          width=56, height=10)
    chart15 = ascii_chart({"SPEC": spec_energy, "stressmark": sm_energy},
                          width=56, height=10)
    return "\n\n".join([
        table,
        "Figure 14 (performance loss vs delay):\n" + chart14,
        "Figure 15 (energy increase vs delay):\n" + chart15,
        "shape check: SPEC mean perf loss stays under a few percent "
        "(max %.2f%%); the stressmark pays more at large delays "
        "(max %.2f%%)" % (max(spec_perf), max(sm_perf)),
    ])


def bench_fig14_15_sensor_delay(benchmark):
    text = once(benchmark, _build)
    report("fig14_15_sensor_delay", text)
    assert "shape check" in text
