"""Figure 2: frequency and transient response of the second-order model.

Regenerates the two canonical plots: |Z(f)| with its resonance peak (the
target impedance), and the droop step response with its overshoot and
ringing.
"""

import numpy as np

from repro.analysis.tables import ascii_chart

from harness import design_at, once, report


def _build():
    # The solved 100%-of-target network: its |Z| peak *is* the target
    # impedance for the Table-1 machine's current envelope.
    pdn = design_at(100).pdn
    freqs = np.linspace(1e6, 200e6, 400)
    impedance = pdn.impedance(freqs)
    peak, f_peak = pdn.peak_impedance()

    t = np.linspace(0.0, 8.0 / pdn.resonant_hz, 400)
    step = pdn.step_response(t)

    lines = ["Figure 2 (left): impedance vs frequency, 1-200 MHz"]
    lines.append(ascii_chart({"|Z| (ohm)": impedance}, width=64, height=12))
    lines.append("peak (target) impedance: %.3f mOhm at %.1f MHz; "
                 "DC resistance %.2f mOhm"
                 % (peak * 1e3, f_peak / 1e6, pdn.dc_resistance * 1e3))
    lines.append("")
    lines.append("Figure 2 (right): droop response to a 1 A current step")
    lines.append(ascii_chart({"droop (V/A)": step}, width=64, height=12))
    lines.append("overshoot: peak %.3f mOhm vs final %.3f mOhm (x%.1f); "
                 "settling ~%.0f ns"
                 % (step.max() * 1e3, pdn.dc_resistance * 1e3,
                    pdn.step_overshoot_ratio(),
                    pdn.settling_time(0.05) * 1e9))
    return "\n".join(lines)


def bench_fig02_system_response(benchmark):
    text = once(benchmark, _build)
    report("fig02_system_response", text)
    assert "overshoot" in text
