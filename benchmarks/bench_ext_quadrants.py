"""Extension: per-quadrant (local) dI/dt effects (Section 6).

"Local power supply swings in different chip quadrants can be an
important issue to consider, in addition to the more global effects
considered here."  This bench runs real workloads through the cycle
simulator, splits their per-cycle power across a four-quadrant
floorplan, and drives a hierarchical package+quadrant network with (a)
the actual localized currents and (b) the same total current spread
uniformly -- the assumption a global model silently makes.  The
difference is the local droop a global sensor under-reports.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.pdn.quadrants import (
    QUADRANT_FLOORPLAN,
    QuadrantParameters,
    QuadrantPdn,
    split_power,
)
from repro.power.model import PowerModel
from repro.uarch.core import Machine

from harness import (
    WARMUP_INSTRUCTIONS,
    design_at,
    once,
    report,
    spec_stream,
    stressmark,
    tuned_stressmark_spec,
)

QUADRANT_NAMES = {0: "front-end", 1: "window", 2: "execute", 3: "memory"}


def _quadrant_currents(stream, warmup, cycles):
    design = design_at(200)
    machine = Machine(design.config, stream)
    model = PowerModel(design.config, design.power_model.params)
    machine.fast_forward(warmup)
    rows = []
    machine.run(max_cycles=cycles, cycle_hook=lambda m, a: rows.append(
        split_power(model.breakdown(a))))
    return np.array(rows)  # watts; vdd = 1.0 so also amperes


def _analyze(name, currents, pdn):
    discrete = pdn.discretize()
    localized = discrete.simulate(currents,
                                  initial_current=currents[0])
    total = currents.sum(axis=1)
    uniform = np.repeat(total[:, None] / 4.0, 4, axis=1)
    spread = discrete.simulate(uniform, initial_current=uniform[0])
    worst_q = int(np.argmin(localized.min(axis=0)))
    local_min = float(localized.min())
    uniform_min = float(spread.min())
    return [name, QUADRANT_NAMES[worst_q], "%.4f" % local_min,
            "%.4f" % uniform_min,
            "%.1f" % ((uniform_min - local_min) * 1e3)]


def _build():
    tuned_stressmark_spec(200)  # warm the cache used by stressmark()
    pdn = QuadrantPdn(QuadrantParameters.representative())
    rows = []
    rows.append(_analyze("stressmark",
                         _quadrant_currents(stressmark(), 2000, 8000), pdn))
    for bench in ("galgel", "swim"):
        rows.append(_analyze(bench,
                             _quadrant_currents(spec_stream(bench),
                                                WARMUP_INSTRUCTIONS, 8000),
                             pdn))
    table = format_table(
        ["Workload", "Hottest quadrant", "Local min V",
         "Uniform-spread min V", "Local penalty (mV)"], rows,
        title="Extension: localized vs uniformly-spread current on the "
              "quadrant network")
    floorplan = "; ".join("%s: %s" % (QUADRANT_NAMES[q], "/".join(names))
                          for q, names in QUADRANT_FLOORPLAN.items())
    notes = ("floorplan -- %s.\nActivity concentration makes the hottest "
             "quadrant droop below what a die-average (global) model "
             "reports; sensing and actuating per quadrant is the natural "
             "next step the paper sketches." % floorplan)
    return table + "\n\n" + notes


def bench_ext_quadrant_locality(benchmark):
    text = once(benchmark, _build)
    report("ext_quadrants", text)
    assert "quadrant" in text
