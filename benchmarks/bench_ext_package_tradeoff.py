"""Extension: the package-cost trade-off (the paper's economic argument).

Figure 1's motivation: meeting target impedance in packaging alone gets
prohibitively expensive, so augment a cheaper package with control.
This bench walks the trade: for packages from 150% to 400% of target
impedance, it verifies the controller still guarantees the spec and
measures what the stressmark (worst case) and a busy benchmark pay.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.control.thresholds import ControlInfeasibleError

from harness import design_at, once, report, spec_stream
from repro.core import stressmark_stream, tune_stressmark

DELAY = 2
PERCENTS = (150, 200, 300, 400)


def _run_pair(design, stream_factory, warmup):
    base = design.run(stream_factory(), delay=None,
                      warmup_instructions=warmup, max_cycles=10000)
    ctrl = design.run(stream_factory(), delay=DELAY,
                      actuator_kind="fu_dl1_il1",
                      warmup_instructions=warmup, max_cycles=10000)
    return base, ctrl


def _build():
    rows = []
    for pct in PERCENTS:
        design = design_at(pct)
        try:
            d = design.thresholds(delay=DELAY, actuator_kind="fu_dl1_il1")
        except ControlInfeasibleError:
            rows.append([pct, "infeasible", "-", "-", "-", "-"])
            continue
        spec, _ = tune_stressmark(design.pdn, design.config)
        sm_base, sm_ctrl = _run_pair(
            design, lambda: stressmark_stream(spec), 2000)
        gz_base, gz_ctrl = _run_pair(
            design, lambda: spec_stream("gzip"), 60000)
        rows.append([
            pct, "%.0f" % d.window_mv,
            sm_ctrl.emergencies["emergency_cycles"],
            "%.1f / %.1f" % (performance_loss_percent(sm_base, sm_ctrl),
                             energy_increase_percent(sm_base, sm_ctrl)),
            gz_ctrl.emergencies["emergency_cycles"],
            "%.1f / %.1f" % (performance_loss_percent(gz_base, gz_ctrl),
                             energy_increase_percent(gz_base, gz_ctrl)),
        ])
    table = format_table(
        ["Impedance (%)", "Window (mV)", "SM emerg",
         "SM perf/energy (%)", "gzip emerg", "gzip perf/energy (%)"],
        rows,
        title="Extension: cheaper packages rescued by control (delay %d, "
              "fu_dl1_il1)" % DELAY)
    notes = ("at every feasible package quality the controller holds the "
             "spec (zero emergencies).  Performance cost lands on "
             "worst-case software and grows as the package gets cheaper, "
             "while the mainstream benchmark's performance stays free; "
             "its *energy* cost fluctuates with how close the solved "
             "high threshold sits to nominal (a tight boost trigger "
             "phantom-fires on ordinary ripple).  This is the augment-"
             "don't-overbuild argument of the paper's introduction, "
             "walked along the impedance axis.")
    return table + "\n\n" + notes


def bench_ext_package_tradeoff(benchmark):
    text = once(benchmark, _build)
    report("ext_package_tradeoff", text)
    assert "packages" in text
