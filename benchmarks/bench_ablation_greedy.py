"""Ablation: greedy threshold control vs pessimistic slew limiting.

Section 2.3's argument: short bursts are harmless, so the controller
should let current jump and intervene only near the thresholds.  The
strawman alternative ramps every power transition.  This bench runs
both on a bursty SPEC benchmark and on the stressmark and compares
performance cost against protection achieved.
"""

from repro.analysis.metrics import performance_loss_percent
from repro.analysis.tables import format_table
from repro.control.loop import run_workload
from repro.control.ramp import PessimisticRampController

from harness import (
    WARMUP_INSTRUCTIONS,
    RUN_CYCLES,
    design_at,
    once,
    report,
    run_spec,
    run_stressmark,
    spec_stream,
    stressmark,
)


def _run_ramp(design, stream, warmup, max_step=2.0):
    def factory(machine, power_model):
        return PessimisticRampController(max_step=max_step)
    return run_workload(stream, design.pdn, config=design.config,
                        power_params=design.power_model.params,
                        controller_factory=factory,
                        warmup_instructions=warmup, max_cycles=RUN_CYCLES)


def _build():
    design = design_at(200)
    rows = []
    for label, base, greedy, ramp in [
        ("galgel",
         run_spec("galgel", delay=None),
         run_spec("galgel", delay=2),
         _run_ramp(design, spec_stream("galgel"), WARMUP_INSTRUCTIONS)),
        ("stressmark",
         run_stressmark(delay=None),
         run_stressmark(delay=2),
         _run_ramp(design, stressmark(), 2000)),
    ]:
        rows.append([
            label,
            base.emergencies["emergency_cycles"],
            "%.2f%% / %d" % (performance_loss_percent(base, greedy),
                             greedy.emergencies["emergency_cycles"]),
            "%.2f%% / %d" % (performance_loss_percent(base, ramp),
                             ramp.emergencies["emergency_cycles"]),
        ])
    table = format_table(
        ["Workload", "Baseline emergencies",
         "Greedy threshold (perf loss / emergencies)",
         "Pessimistic ramp (perf loss / emergencies)"],
        rows,
        title="Ablation: greedy threshold control vs pessimistic slew "
              "limiting (200% impedance)")
    notes = ("The greedy controller intervenes only near the thresholds "
             "and still guarantees the spec; the pessimistic ramp "
             "throttles every burst -- paying performance whether or not "
             "voltage was at risk -- and provides no worst-case bound.")
    return table + "\n\n" + notes


def bench_ablation_greedy_vs_pessimistic(benchmark):
    text = once(benchmark, _build)
    report("ablation_greedy", text)
    assert "Greedy" in text
