"""Ablation: multi-cycle energy spreading on vs off.

Section 3.1: the paper spreads the energy of multi-cycle operations
(e.g. FP divides) over their execution "to avoid the overestimation of
current swings that might occur if the power were accounted for all at
once".  This bench quantifies that: with spreading disabled, per-cycle
current spikes at issue inflate the apparent dI/dt and the emergency
count.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.control.loop import run_workload
from repro.power.params import PowerParams

from harness import design_at, once, report, stressmark


def _run(design, spread):
    params = PowerParams(spread_multicycle=spread)
    return run_workload(stressmark(), design.pdn, config=design.config,
                        power_params=params, warmup_instructions=2000,
                        max_cycles=10000, record_traces=True)


def _window_swing(currents, window):
    best = 0.0
    for start in range(0, currents.size - window, window // 2):
        chunk = currents[start:start + window]
        best = max(best, float(chunk.max() - chunk.min()))
    return best


def _build():
    design = design_at(200)
    with_spread = _run(design, spread=True)
    without = _run(design, spread=False)
    period = int(round(design.pdn.resonant_period_cycles()))

    rows = []
    for label, result in [("spreading on (paper's fix)", with_spread),
                          ("spreading off", without)]:
        c = result.currents
        per_cycle_didt = float(np.max(np.abs(np.diff(c))))
        rows.append([label,
                     "%.1f" % _window_swing(c, period),
                     "%.1f" % per_cycle_didt,
                     result.emergencies["emergency_cycles"],
                     "%.4f" % result.emergencies["v_min"]])
    table = format_table(
        ["Energy accounting", "Swing per period (A)",
         "Max per-cycle dI (A)", "Emergency cycles", "Min voltage (V)"],
        rows,
        title="Ablation: multi-cycle energy spreading (stressmark, "
              "200% impedance)")
    ratio = (float(np.max(np.abs(np.diff(without.currents)))) /
             float(np.max(np.abs(np.diff(with_spread.currents)))))
    notes = ("disabling spreading inflates the worst per-cycle current "
             "step by %.1fx -- the overestimation the paper's Wattch "
             "modification removes." % ratio)
    return table + "\n\n" + notes


def bench_ablation_energy_spreading(benchmark):
    text = once(benchmark, _build)
    report("ablation_spreading", text)
    assert "overestimation" in text
