"""Extension: how fast must actuation be? (Section 5's opening claim.)

"Electrical solutions like voltage scaling can significantly reduce the
processor power; unfortunately, the time scales needed for such
transitions are fairly large.  As previously demonstrated, voltage
control needs to act within 1-5 cycles."  This bench quantifies the
claim with the threshold solver: the total sensing+actuation delay is
swept from the paper's 0-6 cycles out to DVFS-scale latencies, and the
achievable safe window is recorded until the design becomes infeasible.
"""

from repro.analysis.tables import format_table
from repro.control.thresholds import ControlInfeasibleError, solve_thresholds

from harness import design_at, once, report

DELAYS = (0, 2, 4, 6, 8, 10, 12, 15, 20, 30, 50, 100)


def _build():
    design = design_at(200)
    i_reduce, i_boost = design.response_currents("ideal")
    rows = []
    last_feasible = None
    for delay in DELAYS:
        try:
            d = solve_thresholds(design.pdn, design.i_min, design.i_max,
                                 delay, i_reduce=i_reduce, i_boost=i_boost)
            rows.append([delay, "%.3f" % d.v_low, "%.3f" % d.v_high,
                         "%.0f" % d.window_mv])
            last_feasible = delay
        except ControlInfeasibleError:
            rows.append([delay, "-", "-", "infeasible"])
    table = format_table(
        ["Total loop delay (cycles)", "v_low (V)", "v_high (V)",
         "Window (mV)"], rows,
        title="Extension: actuation-speed requirement (ideal actuator, "
              "200% impedance)")
    period = design.pdn.resonant_period_cycles(design.config.clock_hz)
    notes = ("the resonant period is %.0f cycles; once the loop delay "
             "approaches a half-period the controller is reacting to the "
             "previous swing and the window collapses (last feasible "
             "delay here: %s cycles).  A DVFS transition -- microseconds, "
             "i.e. thousands of cycles -- is orders of magnitude outside "
             "the budget, which is why the paper actuates with clock "
             "gating." % (period, last_feasible))
    return table + "\n\n" + notes


def bench_ext_actuation_speed(benchmark):
    text = once(benchmark, _build)
    report("ext_actuation_speed", text)
    assert "resonant period" in text
