"""Ablation: wrong-path fetch power in the misprediction shadow.

The paper modified Wattch's front end specifically because branch
recovery produces "a significant current swing".  Our default model
keeps the front end quiet while a mispredicted branch resolves (only
the correct path exists in the stream); the ``model_wrong_path`` option
charges the front end for chasing the wrong path instead.  This bench
measures what the choice does to the current trough that each
misprediction opens -- the dI/dt event in question.
"""

from repro.analysis.tables import format_table
from repro.pdn.discrete import DiscretePdn
from repro.power.model import PowerModel
from repro.power.trace import CurrentTrace
from repro.uarch.config import MachineConfig
from repro.uarch.core import Machine

from harness import design_at, once, report, spec_stream


def _run(design, model_wrong_path):
    config = MachineConfig(model_wrong_path=model_wrong_path)
    machine = Machine(config, spec_stream("gcc"))  # branchy workload
    model = PowerModel(config, design.power_model.params)
    machine.fast_forward(60000)
    trace = CurrentTrace(config.clock_hz)
    machine.run(max_cycles=12000,
                cycle_hook=lambda m, a: trace.append(model.power(a)))
    return machine, trace


def _build():
    design = design_at(200)
    rows = []
    extremes = {}
    for label, flag in (("quiet shadow (default)", False),
                        ("wrong-path fetch modeled", True)):
        machine, trace = _run(design, flag)
        currents = trace.currents
        v = DiscretePdn(design.pdn).simulate(currents,
                                             initial_current=currents[0])
        extremes[flag] = (float(v.min()), float(v.max()))
        rows.append([label, machine.stats.mispredictions,
                     "%.1f" % currents.min(), "%.1f" % currents.mean(),
                     "%.4f" % v.min(), "%.4f" % v.max()])
    table = format_table(
        ["Front-end model", "Mispredictions", "Min current (A)",
         "Mean current (A)", "Min V", "Max V"], rows,
        title="Ablation: misprediction-shadow power (gcc, 200% impedance)")
    quiet_span = extremes[False][1] - extremes[False][0]
    chasing_span = extremes[True][1] - extremes[True][0]
    notes = ("wrong-path fetch keeps the front end hot through each "
             "shadow, lifting the current floor and narrowing the "
             "voltage excursion (span %.1f mV vs %.1f mV): the quiet-"
             "shadow default is the *conservative* choice for dI/dt "
             "studies, overstating rather than hiding the swing."
             % (chasing_span * 1e3, quiet_span * 1e3))
    return table + "\n\n" + notes


def bench_ablation_wrong_path_power(benchmark):
    text = once(benchmark, _build)
    report("ablation_wrongpath", text)
    assert "shadow" in text
