"""Table 3: voltage thresholds under sensor delay (200% impedance).

Solves the threshold design for delays 0-6 cycles and reproduces the
table's three columns.  Expected shape (paper): the low threshold rises
monotonically with delay (0.956 -> 0.976 V), the high threshold drops
from its delay-0 value, and the safe window shrinks (94 -> 41 mV).

The seven delay cells are independent design-time solves, so they are
submitted to the orchestrator as ``kind="thresholds"`` jobs and come
back from the result cache on re-runs.
"""

from repro.analysis.tables import format_table
from repro.orchestrator import JobSpec

from harness import once, report, run_grid


def _build():
    specs = [JobSpec.thresholds(200, delay=delay) for delay in range(7)]
    designs = [result["thresholds"] for result in run_grid(specs)]
    rows = []
    for d in designs:
        rows.append([d["delay"], "%.3f" % d["v_low"], "%.3f" % d["v_high"],
                     "%.0f" % d["window_mv"]])
    table = format_table(
        ["Delay (cycles)", "Low Threshold (V)", "High Threshold (V)",
         "Safe Window (mV)"], rows,
        title="Table 3: voltage thresholds under delay for 200% impedance")
    lows = [d["v_low"] for d in designs]
    shape = []
    shape.append("low threshold rises monotonically: %s"
                 % ("yes" if lows == sorted(lows) else "NO"))
    shape.append("window shrinks delay 0 -> 6: %.0f mV -> %.0f mV"
                 % (designs[0]["window_mv"], designs[6]["window_mv"]))
    shape.append("every design verified against the adversarial worst "
                 "case: all extremes within [0.95, 1.05] V")
    return table + "\n\n" + "\n".join(shape)


def bench_table3_thresholds_vs_delay(benchmark):
    text = once(benchmark, _build)
    report("table3_thresholds", text)
    assert "monotonically: yes" in text
