"""Extension: threshold control vs P-I-D control (Section 6).

The paper argues PID control needs a digitized voltage reading and a
multiply-accumulate law -- more latency and complexity -- where the
threshold scheme needs only a 3-state comparator.  This bench runs both
on the stressmark at 200% impedance: the threshold controller at its
solved operating point, and a tuned PD loop behind an ADC-style sensor
at increasing conversion latencies.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.control.loop import run_workload
from repro.control.pid import DigitizingSensor, PidController, default_gains

from harness import design_at, once, report, run_stressmark, stressmark


def _run_pid(design, delay, bits):
    kp, ki, kd = default_gains(design.pdn, design.i_min, design.i_max)

    def factory(machine, power_model):
        return PidController(kp, ki, kd,
                             sensor=DigitizingSensor(bits=bits, delay=delay))
    return run_workload(stressmark(), design.pdn, config=design.config,
                        power_params=design.power_model.params,
                        controller_factory=factory,
                        warmup_instructions=2000, max_cycles=12000)


def _build():
    design = design_at(200)
    base = run_stressmark(delay=None)
    rows = []

    threshold = run_stressmark(delay=2, actuator_kind="fu_dl1_il1")
    rows.append(["threshold, delay 2 (paper)", "guaranteed",
                 threshold.emergencies["emergency_cycles"],
                 "%.1f" % performance_loss_percent(base, threshold),
                 "%.1f" % energy_increase_percent(base, threshold)])

    for delay, bits in ((1, 8), (3, 6), (5, 6)):
        pid = _run_pid(design, delay, bits)
        rows.append(["PD, %d-bit ADC, delay %d" % (bits, delay), "none",
                     pid.emergencies["emergency_cycles"],
                     "%.1f" % performance_loss_percent(base, pid),
                     "%.1f" % energy_increase_percent(base, pid)])

    table = format_table(
        ["Controller", "Worst-case bound", "Emergency cycles",
         "Perf loss (%)", "Energy incr (%)"], rows,
        title="Extension: threshold vs PID control (stressmark, 200% "
              "impedance)")
    notes = ("The threshold controller carries a solved worst-case "
             "guarantee and a 3-state sensor; the PD loop regulates all "
             "ripple (not just danger), costs more as ADC latency grows, "
             "and offers no bound -- the trade-off the paper's Section 6 "
             "anticipates.  (Integral action is disabled by default: a "
             "busy program's IR drop biases the error and winds the "
             "integrator into permanent throttling.)")
    return table + "\n\n" + notes


def bench_ext_pid_vs_threshold(benchmark):
    text = once(benchmark, _build)
    report("ext_pid", text)
    assert "threshold" in text
