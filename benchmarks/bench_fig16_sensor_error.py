"""Figure 16: sensor error vs performance and energy.

Sweeps white-noise sensor error from 0 to 25 mV at a fixed 2-cycle
delay (ideal actuator) over the active SPEC benchmarks.  The thresholds
are re-margined for each error level, narrowing the operating window.
Expected shape: negligible below ~15 mV, degrading beyond.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import ascii_chart, format_table

from harness import ACTIVE, design_at, once, report, run_spec

ERRORS_MV = (0, 10, 15, 20, 25)
DELAY = 2


def _build():
    design = design_at(200)
    baselines = {name: run_spec(name, delay=None) for name in ACTIVE}
    perf_series = []
    energy_series = []
    windows = []
    for error_mv in ERRORS_MV:
        error = error_mv / 1000.0
        windows.append(design.thresholds(delay=DELAY, error=error).window_mv)
        perf = []
        energy = []
        for name in ACTIVE:
            controlled = run_spec(name, delay=DELAY, error=error)
            perf.append(performance_loss_percent(baselines[name],
                                                 controlled))
            energy.append(energy_increase_percent(baselines[name],
                                                  controlled))
        perf_series.append(sum(perf) / len(perf))
        energy_series.append(sum(energy) / len(energy))

    rows = [[e, "%.0f" % w, "%.2f" % p, "%.2f" % en]
            for e, w, p, en in zip(ERRORS_MV, windows, perf_series,
                                   energy_series)]
    table = format_table(
        ["Error (mV)", "Window (mV)", "SPEC perf loss (%)",
         "SPEC energy incr (%)"], rows,
        title="Figure 16: impact of sensor error (delay %d, ideal "
              "actuator, 200%% impedance)" % DELAY)
    chart = ascii_chart({"perf loss %": perf_series,
                         "energy incr %": energy_series},
                        width=50, height=10)
    small = max(perf_series[:2])
    large = perf_series[-1]
    notes = ("shape check: small errors (<=10 mV) cost %.2f%% perf at "
             "most; 25 mV error costs %.2f%% as the window narrows "
             "from %.0f to %.0f mV"
             % (small, large, windows[0], windows[-1]))
    return "\n\n".join([table, chart, notes])


def bench_fig16_sensor_error(benchmark):
    text = once(benchmark, _build)
    report("fig16_sensor_error", text)
    assert "shape check" in text
