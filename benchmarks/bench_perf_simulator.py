"""Simulator throughput (pytest-benchmark used for actual timing).

Unlike the table/figure benches (single-shot experiment regeneration),
these measure the infrastructure itself over multiple rounds: cycles
per second of the bare core, the core + power model, and the full
closed loop, plus the PDN recursion in isolation.  Useful for spotting
performance regressions in the inner loops.
"""

import numpy as np

from repro.control.loop import ClosedLoopSimulation
from repro.pdn.discrete import PdnSimulator
from repro.power.model import PowerModel
from repro.uarch.core import Machine

from harness import design_at, stressmark, tuned_stressmark_spec

CYCLES = 2000


def _fresh_machine(design):
    machine = Machine(design.config, stressmark())
    machine.fast_forward(2000)
    return machine


def bench_perf_bare_core(benchmark):
    design = design_at(200)
    tuned_stressmark_spec(200)

    def run():
        machine = _fresh_machine(design)
        machine.run(max_cycles=CYCLES)
        return machine.stats.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_core_plus_power(benchmark):
    design = design_at(200)
    model = PowerModel(design.config, design.power_model.params)

    def run():
        machine = _fresh_machine(design)
        total = 0.0
        hook = lambda m, a: None
        while machine.cycle < CYCLES and not machine.done:
            activity = machine.step()
            total += model.power(activity)
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    assert total > 0


def bench_perf_closed_loop(benchmark):
    design = design_at(200)

    def run():
        machine = _fresh_machine(design)
        factory = design.controller_factory(delay=2,
                                            actuator_kind="fu_dl1_il1")
        model = PowerModel(design.config, design.power_model.params)
        loop = ClosedLoopSimulation(machine, model, design.pdn,
                                    controller=factory(machine, model))
        result = loop.run(max_cycles=CYCLES)
        return result.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_pdn_recursion(benchmark):
    design = design_at(200)
    currents = np.random.default_rng(3).uniform(15, 65, size=50000)

    def run():
        sim = PdnSimulator(design.pdn, initial_current=15.0)
        for c in currents:
            sim.step(c)
        return sim.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == currents.size
