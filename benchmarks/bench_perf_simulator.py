"""Simulator throughput (pytest-benchmark used for actual timing).

Unlike the table/figure benches (single-shot experiment regeneration),
these measure the infrastructure itself over multiple rounds: cycles
per second of the bare core, the core + power model, and the full
closed loop, plus the PDN recursion in isolation.  Useful for spotting
performance regressions in the inner loops.

The uncontrolled loop is benched twice -- once forced onto the
cycle-by-cycle lockstep path and once on the open-loop fast path
(DESIGN.md section 10) -- so the two can be compared directly, and a
third configuration measures the steady-state campaign cell: a
warm-state checkpoint hit plus a reused PDN simulator plus the fast
path, which is what an orchestrator worker pays per job after the
first.

Running this file as a script re-measures the headline configurations
with min-of-rounds timing and emits the machine-readable figures
tracked in ``BENCH_perf.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_perf_simulator.py --emit out.json \
        [--baseline BENCH_perf.json]

``--baseline`` carries an earlier emission's ``after`` block forward as
the new file's ``before`` block, so the committed file always shows one
generation of history with per-configuration speedups.
"""

import numpy as np

from repro.control.loop import ClosedLoopSimulation
from repro.core.checkpoint import WarmupCache
from repro.pdn.discrete import DiscretePdn, PdnSimulator
from repro.power.model import PowerModel
from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry
from repro.uarch.core import Machine

from harness import design_at, spec_stream, stressmark, tuned_stressmark_spec

CYCLES = 2000

#: Warm-up used by the checkpoint-reuse bench (profile streams pickle;
#: the stressmark stream does not, so the cache bench uses swim).
CHECKPOINT_WARMUP = 2000


def _fresh_machine(design):
    machine = Machine(design.config, stressmark())
    machine.fast_forward(2000)
    return machine


def _uncontrolled_loop(design, machine, telemetry=None, pdn_sim=None):
    return ClosedLoopSimulation(machine, design.power_model, design.pdn,
                                controller=None, pdn_sim=pdn_sim,
                                telemetry=telemetry)


def bench_perf_bare_core(benchmark):
    design = design_at(200)
    tuned_stressmark_spec(200)

    def run():
        machine = _fresh_machine(design)
        machine.run(max_cycles=CYCLES)
        return machine.stats.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_core_plus_power(benchmark):
    design = design_at(200)
    model = PowerModel(design.config, design.power_model.params)

    def run():
        machine = _fresh_machine(design)
        total = 0.0
        while machine.cycle < CYCLES and not machine.done:
            activity = machine.step()
            total += model.power(activity)
        return total

    total = benchmark.pedantic(run, rounds=3, iterations=1)
    assert total > 0


def bench_perf_uncontrolled_lockstep(benchmark):
    """Uncontrolled loop forced onto the cycle-by-cycle path."""
    design = design_at(200)
    tuned_stressmark_spec(200)

    def run():
        machine = _fresh_machine(design)
        loop = _uncontrolled_loop(design, machine)
        loop.force_lockstep = True
        return loop.run(max_cycles=CYCLES).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_uncontrolled_fast_path(benchmark):
    """Same cell on the open-loop fast path; asserts it engaged."""
    design = design_at(200)
    tuned_stressmark_spec(200)

    def run():
        machine = _fresh_machine(design)
        telemetry = Telemetry(metrics=MetricsRegistry())
        loop = _uncontrolled_loop(design, machine, telemetry=telemetry)
        assert loop.fast_path_eligible
        result = loop.run(max_cycles=CYCLES)
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["loop.fast_path_runs"] == 1
        return result.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_checkpoint_reuse(benchmark):
    """Steady-state campaign cell: warm-state hit + fast path.

    The cache is populated outside the timer (a campaign pays the
    warm-up once per worker); the timed region is what every
    subsequent cell over the same (workload, seed, warm-up, config)
    costs: a millisecond-scale checkpoint clone, a PDN-simulator
    reset, and the open-loop run.
    """
    design = design_at(200)
    cache = WarmupCache()
    desc = ("profile", "swim", 11)
    pdn_sim = PdnSimulator(
        DiscretePdn(design.pdn, clock_hz=design.config.clock_hz))

    def factory():
        return Machine(design.config, spec_stream("swim"))

    cache.warmed(design.config, desc, CHECKPOINT_WARMUP, factory)

    def run():
        machine = cache.warmed(design.config, desc, CHECKPOINT_WARMUP,
                               factory)
        pdn_sim.reset()
        loop = _uncontrolled_loop(design, machine, pdn_sim=pdn_sim)
        return loop.run(max_cycles=CYCLES).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES
    assert cache.hits >= 3 and cache.misses == 1


def _closed_loop_cycles(design, lockstep, telemetry=None):
    machine = _fresh_machine(design)
    factory = design.controller_factory(delay=2,
                                        actuator_kind="fu_dl1_il1")
    model = PowerModel(design.config, design.power_model.params)
    loop = ClosedLoopSimulation(machine, model, design.pdn,
                                controller=factory(machine, model),
                                telemetry=telemetry)
    loop.force_lockstep = lockstep
    result = loop.run(max_cycles=CYCLES)
    return result.cycles


def bench_perf_closed_loop(benchmark):
    """Actuated cell forced onto the cycle-by-cycle lockstep path."""
    design = design_at(200)

    cycles = benchmark.pedantic(lambda: _closed_loop_cycles(design, True),
                                rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_closed_loop_speculative(benchmark):
    """Same actuated cell on the speculative chunked engine."""
    design = design_at(200)

    def run():
        telemetry = Telemetry(metrics=MetricsRegistry())
        cycles = _closed_loop_cycles(design, False, telemetry=telemetry)
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["loop.spec_chunks"] > 0
        return cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == CYCLES


def bench_perf_replay_sweep(benchmark):
    """Batched replay sweep: one capture, 16 impedance/observe lanes.

    The timed region is a full cold replay unit -- capture the swim
    trace and replay it through 8 impedances x {uncontrolled,
    observe-only} -- divided across 16 cells, versus the 16 full
    lockstep simulations the same grid costs with ``--no-replay``.
    """
    from repro.orchestrator.replay import (
        ReplayGroup,
        capture_trace,
        execute_replay_group,
    )
    from repro.orchestrator.spec import JobSpec
    from repro.orchestrator.tracecache import CurrentTraceCache

    specs = [JobSpec(workload="swim", cycles=CYCLES,
                     warmup_instructions=CHECKPOINT_WARMUP, seed=11,
                     impedance_percent=p, **ctl)
             for p in (100, 150, 200, 250, 300, 350, 400, 450)
             for ctl in ({}, {"delay": 2, "actuator_kind": "observe"})]
    group = ReplayGroup(specs)
    capture_trace(specs[0])  # pre-pay the warm-up, like a campaign
    disabled = CurrentTraceCache(enabled=False)

    def run():
        result = execute_replay_group(group, trace_cache=disabled)
        assert result["lanes"] == len(specs)
        return result["lanes"]

    lanes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert lanes == len(specs)


def bench_perf_pdn_recursion(benchmark):
    design = design_at(200)
    currents = np.random.default_rng(3).uniform(15, 65, size=50000)

    def run():
        sim = PdnSimulator(design.pdn, initial_current=15.0)
        for c in currents:
            sim.step(c)
        return sim.cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles == currents.size


def bench_perf_pdn_batch(benchmark):
    """Vectorized ZOH kernel: whole-trace PDN evaluation in one call."""
    design = design_at(200)
    dpdn = DiscretePdn(design.pdn)
    currents = np.random.default_rng(3).uniform(15, 65, size=50000)

    def run():
        return dpdn.simulate(currents).size

    samples = benchmark.pedantic(run, rounds=3, iterations=1)
    assert samples == currents.size


# ---------------------------------------------------------------------------
# Script mode: emit the tracked BENCH_perf.json figures.
# ---------------------------------------------------------------------------

#: Figures for the tracked baseline use the standard bench run length.
EMIT_CYCLES = 12000
EMIT_WARMUP = 60000
EMIT_SEED = 11


def _best(fn, rounds):
    import time

    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_configurations():
    """Min-of-rounds timings for every tracked configuration.

    Returns ``{name: {"seconds": s, "cycles_per_sec" | "samples_per_sec": r}}``.
    """
    from repro.core import get_profile

    design = design_at(200)
    out = {}

    def fresh_warm():
        machine = Machine(design.config,
                          get_profile("swim").stream(seed=EMIT_SEED))
        machine.fast_forward(EMIT_WARMUP)
        return machine

    def cell(lockstep):
        machine = fresh_warm()
        loop = _uncontrolled_loop(design, machine)
        loop.force_lockstep = lockstep
        assert loop.run(max_cycles=EMIT_CYCLES).cycles == EMIT_CYCLES

    t = _best(lambda: cell(True), rounds=3)
    out["uncontrolled_cell_lockstep_swim"] = {
        "seconds": t, "cycles_per_sec": EMIT_CYCLES / t}
    t = _best(lambda: cell(False), rounds=3)
    out["uncontrolled_cell_swim"] = {
        "seconds": t, "cycles_per_sec": EMIT_CYCLES / t}

    # Steady-state campaign cell: checkpoint hit + reused PDN sim.
    cache = WarmupCache()
    desc = ("profile", "swim", EMIT_SEED)
    pdn_sim = PdnSimulator(
        DiscretePdn(design.pdn, clock_hz=design.config.clock_hz))

    def factory():
        return Machine(design.config,
                       get_profile("swim").stream(seed=EMIT_SEED))

    cache.warmed(design.config, desc, EMIT_WARMUP, factory)

    def steady_cell():
        machine = cache.warmed(design.config, desc, EMIT_WARMUP, factory)
        pdn_sim.reset()
        loop = _uncontrolled_loop(design, machine, pdn_sim=pdn_sim)
        assert loop.run(max_cycles=EMIT_CYCLES).cycles == EMIT_CYCLES

    t = _best(steady_cell, rounds=5)
    out["uncontrolled_steady_state_cell_swim"] = {
        "seconds": t, "cycles_per_sec": EMIT_CYCLES / t}

    t = _best(fresh_warm, rounds=3)
    out["warm_state_swim"] = {"seconds": t}

    dpdn = DiscretePdn(design.pdn)
    currents = np.random.default_rng(3).uniform(15, 65, size=50000)
    t = _best(lambda: dpdn.simulate(currents), rounds=5)
    out["pdn_simulate_50k"] = {
        "seconds": t, "samples_per_sec": currents.size / t}

    sim = PdnSimulator(design.pdn, initial_current=15.0)

    def pdn_run():
        sim.reset(15.0)
        sim.run(currents)

    t = _best(pdn_run, rounds=5)
    out["pdn_run_50k"] = {
        "seconds": t, "samples_per_sec": currents.size / t}

    # Controlled (actuated) cell.  The timed region is the cell
    # execution alone -- controller construction plus the closed-loop
    # run; the functional warm-up is rebuilt outside the timer each
    # round (its cost is tracked separately by ``warm_state_swim``),
    # so the figure measures the engine the speculative path competes
    # on, not 60k instructions of fast-forward.
    import time

    def controlled_run(machine, lockstep, telemetry=None):
        factory = design.controller_factory(delay=2,
                                            actuator_kind="fu_dl1_il1")
        loop = ClosedLoopSimulation(
            machine, design.power_model, design.pdn,
            controller=factory(machine, design.power_model),
            telemetry=telemetry)
        loop.force_lockstep = lockstep
        assert loop.run(max_cycles=EMIT_CYCLES).cycles == EMIT_CYCLES
        return loop

    def controlled_best(lockstep, telemetry_factory=None, rounds=3):
        best = float("inf")
        loop = None
        for _ in range(rounds):
            machine = fresh_warm()  # untimed (see warm_state_swim)
            telemetry = (telemetry_factory()
                         if telemetry_factory is not None else None)
            t0 = time.perf_counter()
            loop = controlled_run(machine, lockstep, telemetry)
            best = min(best, time.perf_counter() - t0)
        return best, loop

    t, _ = controlled_best(lockstep=True)
    out["controlled_cell_lockstep_swim"] = {
        "seconds": t, "cycles_per_sec": EMIT_CYCLES / t}
    t, _ = controlled_best(lockstep=False)
    out["controlled_cell_swim"] = {
        "seconds": t, "cycles_per_sec": EMIT_CYCLES / t}

    # Same cell with metrics on, asserting the speculative engine
    # actually engaged -- this is the figure CI's perf-trend gate
    # tracks, so a silent fall-back to lockstep fails loudly here.
    t, loop = controlled_best(
        lockstep=False,
        telemetry_factory=lambda: Telemetry(metrics=MetricsRegistry()))
    counters = loop.telemetry.metrics.to_dict()["counters"]
    assert counters["loop.spec_chunks"] > 0, "speculation did not engage"
    assert counters["loop.spec_committed_cycles"] > 0
    out["controlled_cell_spec_swim"] = {
        "seconds": t, "cycles_per_sec": EMIT_CYCLES / t}

    # Snapshot vs pickle clone: the per-chunk rollback primitive
    # against the WarmupCache-style whole-machine clone it replaces.
    from repro.core.snapshot import MachineSnapshot

    snap_machine = fresh_warm()
    SNAPSHOT_OPS = 256

    def snapshot_ops():
        for _ in range(SNAPSHOT_OPS):
            MachineSnapshot(snap_machine).discard()

    t = _best(snapshot_ops, rounds=3)
    out["machine_snapshot_swim"] = {
        "seconds": t, "snapshots_per_sec": SNAPSHOT_OPS / t}

    import pickle

    CLONE_OPS = 8

    def pickle_clones():
        for _ in range(CLONE_OPS):
            pickle.loads(pickle.dumps(snap_machine,
                                      protocol=pickle.HIGHEST_PROTOCOL))

    t = _best(pickle_clones, rounds=3)
    out["machine_pickle_clone_swim"] = {
        "seconds": t, "clones_per_sec": CLONE_OPS / t}

    # Replay sweep vs lockstep sweep over the same grid: 8 impedances
    # x {uncontrolled, observe-only} = 16 cells of one workload.  The
    # replay figure times a *cold* unit (capture + 16 lane folds, the
    # trace cache disabled); the lockstep figure times the 16 full
    # simulations ``sweep --no-replay`` pays.  Their ratio is the
    # sweep-throughput speedup the capture/replay split buys.
    from repro.orchestrator.replay import (
        ReplayGroup,
        capture_trace,
        execute_replay_group,
    )
    from repro.orchestrator.spec import JobSpec
    from repro.orchestrator.tracecache import CurrentTraceCache
    from repro.orchestrator.worker import execute_spec

    specs = [JobSpec(workload="swim", cycles=EMIT_CYCLES,
                     warmup_instructions=EMIT_WARMUP, seed=EMIT_SEED,
                     impedance_percent=p, **ctl)
             for p in (100, 150, 200, 250, 300, 350, 400, 450)
             for ctl in ({}, {"delay": 2, "actuator_kind": "observe"})]
    group = ReplayGroup(specs)
    cells = len(specs)
    capture_trace(specs[0])  # pre-pay the shared warm-up checkpoint
    disabled = CurrentTraceCache(enabled=False)

    def replay_sweep():
        result = execute_replay_group(group, trace_cache=disabled)
        assert result["lanes"] == cells

    t = _best(replay_sweep, rounds=3)
    out["replay_sweep_cells_swim"] = {
        "seconds": t, "cells_per_sec": cells / t}

    def lockstep_sweep():
        for spec in specs:
            assert execute_spec(spec)["status"] == "ok"

    t = _best(lockstep_sweep, rounds=2)
    out["lockstep_sweep_cells_swim"] = {
        "seconds": t, "cells_per_sec": cells / t}
    return out


def _git_commit():
    """The current commit hash, or ``"unknown"`` outside a checkout."""
    import os
    import subprocess

    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            stderr=subprocess.DEVNULL).decode("ascii").strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def default_trend_path():
    import os

    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "results", "perf_trend.jsonl")


def append_trend_record(path, meta, after):
    """Append one per-commit record to the trend JSONL file.

    The trend file is the regression-tracking sibling of the
    single-generation ``BENCH_perf.json``: one line per ``--emit``
    run, diffed pairwise by ``tools/check_perf_trend.py`` in CI.
    """
    import json
    import os

    record = {"commit": _git_commit(), "meta": meta, "figures": after}
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def main(argv=None):
    import argparse
    import json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--emit", required=True,
                        help="output path for the figures JSON")
    parser.add_argument("--baseline", default=None,
                        help="earlier emission whose 'after' block becomes "
                             "this file's 'before' block")
    parser.add_argument("--trend", default=None, metavar="PATH",
                        help="per-commit trend JSONL to append to "
                             "(default: benchmarks/results/"
                             "perf_trend.jsonl)")
    parser.add_argument("--no-trend", action="store_true",
                        help="do not append a trend record")
    args = parser.parse_args(argv)

    after = measure_configurations()
    doc = {
        "meta": {
            "cycles": EMIT_CYCLES,
            "warmup_instructions": EMIT_WARMUP,
            "workload": "swim",
            "seed": EMIT_SEED,
            "impedance_percent": 200,
            "timing": "min of rounds, time.perf_counter",
        },
        "after": after,
    }
    if args.baseline:
        with open(args.baseline) as fh:
            doc["before"] = json.load(fh)["after"]
        # Every key in the new emission gets an entry: a ratio for keys
        # shared with the baseline, the literal "new" for keys the
        # baseline predates (previously they were silently dropped and
        # the speedup map looked complete when it was not).
        speedups = {}
        for name, figs in after.items():
            base = doc["before"].get(name)
            if base and base.get("seconds", 0) > 0:
                speedups[name] = round(base["seconds"] / figs["seconds"], 2)
            else:
                speedups[name] = "new"
        doc["speedup"] = speedups
    with open(args.emit, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    if not args.no_trend:
        trend_path = args.trend or default_trend_path()
        record = append_trend_record(trend_path, doc["meta"], after)
        print("trend: appended %s to %s"
              % (record["commit"][:12], trend_path))
    print(json.dumps(doc, indent=2))


if __name__ == "__main__":
    main()
