"""Extension: spectral danger prediction.

The paper reasons spectrally (Section 2: only the resonant band
matters) but evaluates by simulation.  This bench closes the loop on
the reasoning: an open-loop *danger index* -- each workload's current
spectrum weighted by the network's impedance curve -- is computed from
uncontrolled traces and compared against the actual emergency behaviour
(Table 2's offenders).  The dangerous workloads are exactly the ones
the index ranks highest.
"""

from repro.analysis.spectrum import band_fraction, danger_index
from repro.analysis.tables import format_table

from harness import ACTIVE, design_at, once, report, run_spec, run_stressmark

BENCHES = ("ammp", "mcf", "gzip", "wupwise", "swim", "sixtrack", "facerec",
           "galgel")


def _build():
    design = design_at(200)
    rows = []
    scores = {}
    for name in BENCHES:
        result = run_spec(name, percent=200, record_traces=True,
                          cycles=10000)
        idx = danger_index(result.currents, design.pdn)
        frac = band_fraction(result.currents, design.pdn)
        scores[name] = idx
        rows.append([name, "%.1f" % (idx * 1e3), "%.1f%%" % (100 * frac),
                     result.emergencies["emergency_cycles"],
                     "%.4f" % result.emergencies["v_min"]])
    sm = run_stressmark(percent=200, record_traces=True, cycles=10000)
    sm_idx = danger_index(sm.currents, design.pdn)
    rows.append(["stressmark", "%.1f" % (sm_idx * 1e3),
                 "%.1f%%" % (100 * band_fraction(sm.currents, design.pdn)),
                 sm.emergencies["emergency_cycles"],
                 "%.4f" % sm.emergencies["v_min"]])
    rows.sort(key=lambda r: -float(r[1]))
    table = format_table(
        ["Workload", "Danger index (mV)", "Resonant-band share",
         "Emergencies @200%", "Min V"], rows,
        title="Extension: open-loop spectral danger index vs closed-loop "
              "behaviour")
    active_mean = sum(scores[n] for n in BENCHES if n in ACTIVE) / \
        sum(1 for n in BENCHES if n in ACTIVE)
    stable_mean = sum(scores[n] for n in BENCHES if n not in ACTIVE) / \
        sum(1 for n in BENCHES if n not in ACTIVE)
    notes = ("the index is computed from the current trace and the "
             "impedance curve alone (no voltage simulation); it ranks the "
             "stressmark first (%.1f mV) and the voltage-active benchmarks "
             "(mean %.1f mV) above the stable ones (mean %.1f mV) -- the "
             "paper's spectral argument, made predictive."
             % (sm_idx * 1e3, active_mean * 1e3, stable_mean * 1e3))
    return table + "\n\n" + notes


def bench_ext_spectral_danger_index(benchmark):
    text = once(benchmark, _build)
    report("ext_spectrum", text)
    assert "stressmark" in text
