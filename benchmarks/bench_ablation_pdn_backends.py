"""Ablation: recursive (ZOH) PDN simulation vs direct convolution.

DESIGN.md calls out the substitution of the paper's convolution-based
voltage computation with an exact two-state recursion.  This bench
verifies the two backends agree to numerical precision on a real
workload trace and times them, justifying the default.
"""

import time

import numpy as np

from repro.analysis.tables import format_table
from repro.pdn.convolve import convolve_voltage, pulse_response_kernel
from repro.pdn.discrete import DiscretePdn

from harness import design_at, once, report, run_stressmark


def _build():
    design = design_at(200)
    result = run_stressmark(percent=200, record_traces=True)
    currents = result.currents

    discrete = DiscretePdn(design.pdn, clock_hz=design.config.clock_hz)
    t0 = time.perf_counter()
    v_recursive = discrete.simulate(currents)
    t_recursive = time.perf_counter() - t0

    kernel = pulse_response_kernel(design.pdn,
                                   clock_hz=design.config.clock_hz)
    t0 = time.perf_counter()
    v_convolved = convolve_voltage(design.pdn, currents,
                                   clock_hz=design.config.clock_hz,
                                   kernel=kernel)
    t_convolve = time.perf_counter() - t0

    max_err = float(np.max(np.abs(v_recursive - v_convolved)))
    rows = [
        ["ZOH recursion (default)", "%.1f" % (t_recursive * 1e3), "exact"],
        ["convolution (paper's formulation)", "%.1f" % (t_convolve * 1e3),
         "kernel length %d" % kernel.size],
    ]
    table = format_table(
        ["Backend", "Time (ms) for %d cycles" % currents.size, "Notes"],
        rows, title="Ablation: PDN simulation backends")
    notes = ("max |v_recursive - v_convolved| = %.2e V over a %d-cycle "
             "stressmark trace -- the backends are interchangeable; the "
             "recursion additionally supports cycle-by-cycle feedback "
             "(the closed loop), which batch convolution cannot."
             % (max_err, currents.size))
    return table + "\n\n" + notes


def bench_ablation_pdn_backends(benchmark):
    text = once(benchmark, _build)
    report("ablation_pdn_backends", text)
    assert "interchangeable" in text
