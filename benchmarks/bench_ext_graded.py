"""Extension: graded (two-stage) threshold control.

A middle point between the paper's 3-state controller and PID: a soft
threshold engages the cheap FU-only response before the solved hard
threshold engages the full FU/DL1/IL1 group.  The guarantee is the hard
stage's; the soft stage's value is fewer full-group actuations for the
same protection.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.control.graded import GradedThresholdController
from repro.control.loop import run_workload

from harness import design_at, once, report, run_stressmark, stressmark

DELAY = 3


def _run_graded(design, soft_margin):
    hard = design.thresholds(delay=DELAY, actuator_kind="fu_dl1_il1")

    def factory(machine, power_model):
        return GradedThresholdController(hard, soft_margin=soft_margin)
    return run_workload(stressmark(), design.pdn, config=design.config,
                        power_params=design.power_model.params,
                        controller_factory=factory,
                        warmup_instructions=2000, max_cycles=12000)


def _build():
    design = design_at(200)
    base = run_stressmark(delay=None)
    single = run_stressmark(delay=DELAY, actuator_kind="fu_dl1_il1")
    rows = [["single-stage (paper)",
             single.emergencies["emergency_cycles"],
             "%.1f" % performance_loss_percent(base, single),
             "%.1f" % energy_increase_percent(base, single),
             single.controller["reduce_cycles"], "-"]]
    for margin_mv in (3, 5, 8):
        graded = _run_graded(design, margin_mv / 1000.0)
        s = graded.controller
        rows.append(["graded, %d mV soft margin" % margin_mv,
                     graded.emergencies["emergency_cycles"],
                     "%.1f" % performance_loss_percent(base, graded),
                     "%.1f" % energy_increase_percent(base, graded),
                     s["hard_reduce_cycles"] + s["hard_boost_cycles"],
                     s["soft_reduce_cycles"] + s["soft_boost_cycles"]])
    table = format_table(
        ["Controller", "Emergencies", "Perf loss (%)", "Energy incr (%)",
         "Hard actuations", "Soft actuations"], rows,
        title="Extension: graded two-stage control (stressmark, delay %d, "
              "200%% impedance)" % DELAY)
    notes = ("every configuration preserves the hard stage's guarantee "
             "(zero emergencies).  Measured outcome: on the *stressmark* "
             "the soft stage is a net loss -- its early FU-only gating "
             "slows the machine without preventing the hard crossings, "
             "because the stressmark's excursions are deep by "
             "construction.  The graded scheme only pays off for "
             "workloads whose excursions mostly stop inside the soft "
             "band; a useful negative result for the design space the "
             "paper's Section 6 opens.")
    return table + "\n\n" + notes


def bench_ext_graded_control(benchmark):
    text = once(benchmark, _build)
    report("ext_graded", text)
    assert "graded" in text
