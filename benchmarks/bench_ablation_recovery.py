"""Ablation: freeze vs flush actuation recovery (Section 6).

"In this paper, we assumed that the control logic could protect
necessary state and recover without back-tracking ... Other
possibilities include re-playing instructions or flushing the pipeline
... We performed some initial experiments which show similar
performance/energy results with these options."  This bench reruns that
comparison: the same threshold controller with freeze-and-resume
recovery versus flush-and-replay recovery.
"""

from repro.analysis.metrics import (
    energy_increase_percent,
    performance_loss_percent,
)
from repro.analysis.tables import format_table
from repro.control.actuators import Actuator
from repro.control.controller import ThresholdController
from repro.control.loop import run_workload

from harness import design_at, once, report, run_stressmark, stressmark

DELAY = 4  # large enough that reduce episodes actually occur


def _run(design, recovery):
    thresholds = design.thresholds(delay=DELAY,
                                   actuator_kind="fu_dl1_il1")

    def factory(machine, power_model):
        actuator = Actuator("fu_dl1_il1", recovery=recovery)
        return ThresholdController.from_design(thresholds,
                                               actuator=actuator)
    return run_workload(stressmark(), design.pdn, config=design.config,
                        power_params=design.power_model.params,
                        controller_factory=factory,
                        warmup_instructions=2000, max_cycles=12000)


def _build():
    design = design_at(200)
    base = run_stressmark(delay=None)
    rows = []
    flushes = {}
    for recovery in ("freeze", "flush"):
        result = _run(design, recovery)
        flushes[recovery] = result.machine_stats.flushes
        rows.append([recovery,
                     result.emergencies["emergency_cycles"],
                     "%.1f" % performance_loss_percent(base, result),
                     "%.1f" % energy_increase_percent(base, result),
                     result.controller["reduce_cycles"],
                     result.machine_stats.flushes])
    table = format_table(
        ["Recovery", "Emergencies", "Perf loss (%)", "Energy incr (%)",
         "Reduce cycles", "Pipeline flushes"], rows,
        title="Ablation: actuation recovery policy (stressmark, delay %d, "
              "200%% impedance)" % DELAY)
    notes = ("Both recoveries hold the specification; flushing replays "
             "every squashed instruction (%d flushes here), costing more "
             "cycles per reduce episode -- consistent with the paper's "
             "note that the options behave similarly, with freeze the "
             "cheaper default." % flushes["flush"])
    return table + "\n\n" + notes


def bench_ablation_recovery_policy(benchmark):
    text = once(benchmark, _build)
    report("ablation_recovery", text)
    assert "Recovery" in text
