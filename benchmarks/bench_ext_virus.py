"""Extension: envelope attainability (the power virus).

The target impedance is solved against the model envelope
``[min_power, max_power]``, but no instruction stream can light every
structure at once through an 8-wide issue stage.  This bench measures
the highest power an adversarial-but-real workload sustains, i.e. how
conservative the worst-case design actually is.
"""

from repro.analysis.tables import format_table
from repro.workloads.virus import measure_peak_power

from harness import design_at, once, report, run_stressmark


def _build():
    design = design_at(200)
    virus = measure_peak_power(config=design.config,
                               power_params=design.power_model.params,
                               cycles=6000)
    sm = run_stressmark(percent=200, record_traces=True, cycles=6000)
    sm_mean = float(sm.currents.mean())
    sm_peak = float(sm.currents.max())
    model_max = virus["model_max"]
    rows = [
        ["model envelope maximum", "%.1f" % model_max, "100%", "-"],
        ["power virus (sustained)", "%.1f" % virus["mean_power"],
         "%.0f%%" % (100 * virus["mean_fraction"]),
         "ipc %.1f" % virus["ipc"]],
        ["power virus (single-cycle peak)", "%.1f" % virus["peak_power"],
         "%.0f%%" % (100 * virus["peak_power"] / model_max), "-"],
        ["stressmark burst mean", "%.1f" % sm_mean,
         "%.0f%%" % (100 * sm_mean / model_max), "square wave, not DC"],
        ["stressmark single-cycle peak", "%.1f" % sm_peak,
         "%.0f%%" % (100 * sm_peak / model_max), "-"],
    ]
    table = format_table(
        ["Load", "Watts", "Of model max", "Notes"], rows,
        title="Extension: how much of the design envelope is reachable")
    notes = ("the guarantee is solved against the full envelope, so every "
             "real program -- even the virus -- operates with margin; the "
             "gap (~%.0f%% sustained) is the price of a provable bound "
             "over an empirical one."
             % (100 * (1.0 - virus["mean_fraction"])))
    return table + "\n\n" + notes


def bench_ext_envelope_attainability(benchmark):
    text = once(benchmark, _build)
    report("ext_virus", text)
    assert "envelope" in text
